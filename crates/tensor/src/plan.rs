//! Grad-free **compiled inference plans**: record a forward pass once on a
//! [`Graph`] probe tape, compile it to a flat instruction list, and replay
//! it per batch with none of the autodiff machinery.
//!
//! The serving hot path (the paper's §4–§5 query-time contract) is pure
//! forward evaluation, yet a tape replay still pays for everything training
//! needs: per-node gradient buffers, `Op` metadata writes, parameter
//! re-injection (a copy of every weight matrix *per call*), and slot
//! bookkeeping. An [`InferencePlan`] strips all of that out:
//!
//! * **compile once per model generation** — [`InferencePlan::compile`]
//!   walks a recorded probe tape, dead-code-eliminates nodes the outputs
//!   don't need, **bakes parameter and constant leaves into the plan**
//!   (no per-call injection), and fuses adjacent
//!   `matmul → add_row_vec → activation` triples into single affine
//!   instructions;
//! * **replay allocation-free** — [`InferencePlan::run`] executes the
//!   instruction list into a caller-provided [`PlanBuffers`] arena whose
//!   matrices keep their capacity across calls, for any batch row count;
//! * **bit-identical by construction** — every instruction calls the same
//!   `fwd` kernels the tape ops call (and the fused affine performs exactly
//!   the tape's `matmul`, `+bias`, `activation` scalar sequence), so a plan
//!   replay produces the same bits as the tape forward pass. The property
//!   suite (`tests/plan_properties.rs`) pins this over random networks,
//!   shapes, and batch sizes.
//!
//! ## Row scaling
//!
//! A plan is compiled from a probe tape recorded at some **probe batch
//! size** `B0` and replayed at any row count: every slot is classified as
//! *batch-scaled* (rows follow the run's row count) or *fixed* (rows are
//! whatever the probe recorded). Classification propagates from the
//! declared inputs through the op semantics; a constant leaf whose row
//! count equals `B0` (with `B0 >= 2`) is treated as a batch-broadcast
//! constant — its rows must be bit-identical, and the plan replicates the
//! single stored row to the run's row count. Compile with `B0 >= 2` so
//! batch-scaled slots are distinguishable from genuine one-row constants.

use crate::fwd;
use crate::graph::{Graph, Op, Var};
use crate::matrix::Matrix;

/// Why a tape could not be compiled into an [`InferencePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inference plan compile error: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

fn err<T>(msg: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError(msg.into()))
}

/// How a slot's row count behaves across runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RowSpec {
    /// Rows follow the `rows` argument of [`InferencePlan::run`].
    Batch,
    /// Rows are fixed at the probe-recorded count.
    Fixed(usize),
}

impl RowSpec {
    fn resolve(self, rows: usize) -> usize {
        match self {
            RowSpec::Batch => rows,
            RowSpec::Fixed(n) => n,
        }
    }
}

/// An instruction operand: either a run-time buffer slot or a baked
/// constant (parameter / constant leaf).
#[derive(Clone, Copy, Debug)]
enum Arg {
    Buf(u32),
    Const(u32),
}

/// Elementwise unary ops (also usable as the fused-affine activation).
#[derive(Clone, Copy, Debug)]
enum UnOp {
    Relu,
    LeakyRelu(f32),
    EluPlusOne,
    Softplus,
    Sigmoid,
    Tanh,
    Exp,
    LnEps(f32),
    Abs,
    Square,
    Scale(f32),
    AddScalar(f32),
    Huber(f32),
}

impl UnOp {
    /// `out = f(a)` elementwise, with the variant match resolved **once
    /// per instruction**: each arm monomorphizes
    /// [`fwd::unary_map`] with a concrete scalar closure, so the
    /// per-element loop vectorizes exactly like the tape's closures do.
    fn run(self, a: &Matrix, out: &mut Matrix) {
        match self {
            UnOp::Relu => fwd::unary_map(a, out, fwd::relu),
            UnOp::LeakyRelu(al) => fwd::unary_map(a, out, |x| fwd::leaky_relu(x, al)),
            UnOp::EluPlusOne => fwd::unary_map(a, out, fwd::elu_plus_one),
            UnOp::Softplus => fwd::unary_map(a, out, fwd::softplus),
            UnOp::Sigmoid => fwd::unary_map(a, out, fwd::sigmoid),
            UnOp::Tanh => fwd::unary_map(a, out, f32::tanh),
            UnOp::Exp => fwd::unary_map(a, out, fwd::exp_clamped),
            UnOp::LnEps(eps) => fwd::unary_map(a, out, |x| fwd::ln_eps(x, eps)),
            UnOp::Abs => fwd::unary_map(a, out, f32::abs),
            UnOp::Square => fwd::unary_map(a, out, |x| x * x),
            UnOp::Scale(al) => fwd::unary_map(a, out, |x| x * al),
            UnOp::AddScalar(c) => fwd::unary_map(a, out, |x| x + c),
            UnOp::Huber(d) => fwd::unary_map(a, out, |x| fwd::huber(x, d)),
        }
    }

    /// In-place `out[i][j] = f(out[i][j] + bias[j])` — the fused affine
    /// tail, monomorphized per variant like [`UnOp::run`]. (Folding the
    /// epilogue into the matmul kernel's register writeback was measured
    /// and *lost*: the extra generic instantiations of the tile kernel
    /// degrade its codegen by more than the saved output pass — the
    /// cache-hot separate pass costs almost nothing.)
    fn run_bias_act(self, bias: &Matrix, out: &mut Matrix) {
        match self {
            UnOp::Relu => bias_act(bias, out, fwd::relu),
            UnOp::LeakyRelu(al) => bias_act(bias, out, |x| fwd::leaky_relu(x, al)),
            UnOp::EluPlusOne => bias_act(bias, out, fwd::elu_plus_one),
            UnOp::Softplus => bias_act(bias, out, fwd::softplus),
            UnOp::Sigmoid => bias_act(bias, out, fwd::sigmoid),
            UnOp::Tanh => bias_act(bias, out, f32::tanh),
            UnOp::Exp => bias_act(bias, out, fwd::exp_clamped),
            UnOp::LnEps(eps) => bias_act(bias, out, |x| fwd::ln_eps(x, eps)),
            UnOp::Abs => bias_act(bias, out, f32::abs),
            UnOp::Square => bias_act(bias, out, |x| x * x),
            UnOp::Scale(al) => bias_act(bias, out, |x| x * al),
            UnOp::AddScalar(c) => bias_act(bias, out, |x| x + c),
            UnOp::Huber(d) => bias_act(bias, out, |x| fwd::huber(x, d)),
        }
    }
}

/// `out[i][j] = f(out[i][j] + bias[j])` over all rows — the second half of
/// a fused affine instruction, running on the cache-hot matmul output.
fn bias_act(bias: &Matrix, out: &mut Matrix, f: impl Fn(f32) -> f32) {
    let cols = bias.cols();
    let b = bias.data();
    for row in out.data_mut().chunks_exact_mut(cols) {
        for (o, &bv) in row.iter_mut().zip(b) {
            *o = f(*o + bv);
        }
    }
}

/// Elementwise binary ops.
#[derive(Clone, Copy, Debug)]
enum BinOp {
    Add,
    Sub,
    Mul,
}

/// One compiled forward instruction. Operands are [`Arg`]s; `out` is
/// always a buffer slot written in execution order (so every operand's
/// buffer index is strictly below `out`).
#[derive(Clone, Copy, Debug)]
enum Instr {
    /// Replicates a baked single-row constant to the run's row count
    /// (batch-broadcast constant leaves, e.g. an all-zeros column).
    Broadcast {
        src: u32,
        out: u32,
    },
    /// Fused `act(x @ w + b)`; `act: None` is plain `x @ w + b`.
    Affine {
        x: Arg,
        w: Arg,
        b: Arg,
        act: Option<UnOp>,
        out: u32,
    },
    MatMul {
        a: Arg,
        b: Arg,
        out: u32,
    },
    AddRowVec {
        m: Arg,
        row: Arg,
        out: u32,
    },
    MulColVec {
        m: Arg,
        col: Arg,
        out: u32,
    },
    Binary {
        op: BinOp,
        a: Arg,
        b: Arg,
        out: u32,
    },
    Unary {
        op: UnOp,
        a: Arg,
        out: u32,
    },
    SoftmaxRows {
        a: Arg,
        out: u32,
    },
    Sum {
        a: Arg,
        out: u32,
    },
    Mean {
        a: Arg,
        out: u32,
    },
    RowSum {
        a: Arg,
        out: u32,
    },
    ConcatCols {
        a: Arg,
        b: Arg,
        out: u32,
    },
    SliceCols {
        a: Arg,
        start: u32,
        end: u32,
        out: u32,
    },
    CumsumCols {
        a: Arg,
        out: u32,
    },
    Norml2 {
        a: Arg,
        eps: f32,
        out: u32,
    },
    PwlInterp {
        tau: Arg,
        p: Arg,
        t: Arg,
        out: u32,
    },
    BlockLinear {
        input: Arg,
        weight: Arg,
        bias: Arg,
        out: u32,
    },
    Lattice {
        input: Arg,
        params: Arg,
        out: u32,
    },
}

impl Instr {
    fn out(&self) -> u32 {
        match *self {
            Instr::Broadcast { out, .. }
            | Instr::Affine { out, .. }
            | Instr::MatMul { out, .. }
            | Instr::AddRowVec { out, .. }
            | Instr::MulColVec { out, .. }
            | Instr::Binary { out, .. }
            | Instr::Unary { out, .. }
            | Instr::SoftmaxRows { out, .. }
            | Instr::Sum { out, .. }
            | Instr::Mean { out, .. }
            | Instr::RowSum { out, .. }
            | Instr::ConcatCols { out, .. }
            | Instr::SliceCols { out, .. }
            | Instr::CumsumCols { out, .. }
            | Instr::Norml2 { out, .. }
            | Instr::PwlInterp { out, .. }
            | Instr::BlockLinear { out, .. }
            | Instr::Lattice { out, .. } => out,
        }
    }
}

/// Reusable value-buffer arena for plan replays. One `PlanBuffers` serves
/// any number of plans (buffers are reshaped per run, keeping capacity);
/// a steady-state replay touches the allocator not at all. Not shareable
/// across threads mid-run — use [`PlanBuffers::with_pooled`] for a
/// zero-setup thread-local arena.
#[derive(Default)]
pub struct PlanBuffers {
    bufs: Vec<Matrix>,
}

impl PlanBuffers {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PlanBuffers::default()
    }

    /// Runs `f` with a **thread-local** arena whose buffers persist for
    /// the life of the thread — the inference mirror of
    /// [`Graph::with_pooled`]. Must not be nested (the arena is exclusively
    /// borrowed while `f` runs; nesting panics).
    pub fn with_pooled<R>(f: impl FnOnce(&mut PlanBuffers) -> R) -> R {
        use std::cell::RefCell;
        thread_local! {
            static POOLED: RefCell<PlanBuffers> = RefCell::new(PlanBuffers::new());
        }
        POOLED.with(|pool| {
            let mut b = pool.borrow_mut();
            f(&mut b)
        })
    }
}

/// Read-only view of a finished replay's outputs, borrowing the arena.
pub struct PlanOutputs<'a> {
    plan: &'a InferencePlan,
    bufs: &'a PlanBuffers,
}

impl PlanOutputs<'_> {
    /// The `i`-th output matrix (same order as the `outputs` slice given
    /// to [`InferencePlan::compile`]).
    pub fn output(&self, i: usize) -> &Matrix {
        match self.plan.outputs[i] {
            Arg::Buf(b) => &self.bufs.bufs[b as usize],
            Arg::Const(c) => &self.plan.consts[c as usize],
        }
    }
}

/// A compiled, immutable, grad-free forward program. Compile once per
/// model generation with [`InferencePlan::compile`]; replay with
/// [`InferencePlan::run`]. The plan owns baked copies of every parameter
/// and constant leaf, so it stays valid (and answers from exactly the
/// generation it was compiled from) even if the source model mutates —
/// callers invalidate by recompiling, typically keyed on
/// [`ParamStore::version`](crate::ParamStore::version).
#[derive(Debug)]
pub struct InferencePlan {
    instrs: Vec<Instr>,
    /// Baked parameter/constant values (and single rows of batch-broadcast
    /// constants).
    consts: Vec<Matrix>,
    /// `(RowSpec, cols)` per buffer slot, indexed by buffer id.
    buf_shapes: Vec<(RowSpec, usize)>,
    /// Buffer ids of the run-time inputs, in `compile`'s `inputs` order.
    input_bufs: Vec<u32>,
    /// `(RowSpec, cols)` per input, for shaping before the fill callback.
    input_shapes: Vec<(RowSpec, usize)>,
    outputs: Vec<Arg>,
}

/// Per-node classification produced during compilation.
#[derive(Clone, Copy)]
enum NodeVal {
    /// Not yet assigned (unreached).
    None,
    /// Resolves to a baked constant.
    Const(u32),
    /// Resolves to a computed/bound buffer, identified by node id until
    /// buffer ids are assigned in the final pass.
    Node,
}

impl InferencePlan {
    /// Compiles the live tape of `g` into a plan.
    ///
    /// * `inputs` — leaves to re-bind on every run, each with a flag:
    ///   `true` = batch-scaled (rows follow the run's row count; all such
    ///   inputs must share the probe row count `B0`), `false` = fixed rows
    ///   as recorded on the probe tape.
    /// * `outputs` — the nodes whose values [`PlanOutputs::output`]
    ///   exposes. Nodes no output depends on are eliminated.
    ///
    /// Errors when a referenced `Var` is stale, an input is not a plain
    /// constant leaf, batch inputs disagree on the probe row count, or row
    /// scaling cannot be propagated consistently (e.g. an elementwise op
    /// mixing a batch-scaled and a fixed operand).
    pub fn compile(
        g: &Graph,
        inputs: &[(Var, bool)],
        outputs: &[Var],
    ) -> Result<InferencePlan, PlanError> {
        let nodes = g.live_nodes();
        let n = nodes.len();
        for v in inputs
            .iter()
            .map(|(v, _)| *v)
            .chain(outputs.iter().copied())
        {
            if v.0 >= n {
                return err("stale Var (recorded before the last reset?)");
            }
        }

        // ---- probe batch size from the batch-scaled inputs ----
        let mut b0: Option<usize> = None;
        for &(v, batch) in inputs {
            if !matches!(nodes[v.0].op, Op::Leaf) {
                return err("plan inputs must be constant leaves");
            }
            if nodes[v.0].param.is_some() {
                return err("a parameter leaf cannot be a plan input");
            }
            if batch {
                let rows = nodes[v.0].value.rows();
                match b0 {
                    None => b0 = Some(rows),
                    Some(r) if r == rows => {}
                    Some(r) => {
                        return err(format!(
                            "batch inputs disagree on probe rows: {r} vs {rows}"
                        ))
                    }
                }
            }
        }

        // ---- reachability from the outputs ----
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> = outputs.iter().map(|v| v.0).collect();
        while let Some(i) = stack.pop() {
            if reachable[i] {
                continue;
            }
            reachable[i] = true;
            for_each_input(&nodes[i].op, |j| stack.push(j));
        }

        // ---- use counts (among reachable consumers + output references) ----
        let mut uses = vec![0usize; n];
        for (i, node) in nodes.iter().enumerate() {
            if reachable[i] {
                for_each_input(&node.op, |j| uses[j] += 1);
            }
        }
        let mut is_output = vec![false; n];
        for v in outputs {
            is_output[v.0] = true;
        }

        // ---- row-spec propagation + symbolic instruction emission ----
        let mut spec: Vec<Option<RowSpec>> = vec![None; n];
        let mut vals: Vec<NodeVal> = vec![NodeVal::None; n];
        let mut consts: Vec<Matrix> = Vec::new();
        // symbolic instrs: op template + output *node* id (buffer ids are
        // assigned after fusion)
        let mut sym: Vec<Option<(SymInstr, usize)>> = Vec::new();
        // node id -> index into `sym` (for fusion lookups)
        let mut producer: Vec<Option<usize>> = vec![None; n];
        let input_pos: std::collections::HashMap<usize, (usize, bool)> = inputs
            .iter()
            .enumerate()
            .map(|(k, &(v, batch))| (v.0, (k, batch)))
            .collect();
        let mut input_nodes: Vec<Option<usize>> = vec![None; inputs.len()];

        for i in 0..n {
            if !reachable[i] {
                continue;
            }
            let node = &nodes[i];
            let (rows, cols) = node.value.shape();
            match node.op {
                Op::Leaf => {
                    if let Some(&(k, batch)) = input_pos.get(&i) {
                        spec[i] = Some(if batch {
                            RowSpec::Batch
                        } else {
                            RowSpec::Fixed(rows)
                        });
                        vals[i] = NodeVal::Node;
                        input_nodes[k] = Some(i);
                    } else if node.param.is_some() || Some(rows) != b0 || rows <= 1 {
                        // parameter or genuine fixed constant: bake it
                        spec[i] = Some(RowSpec::Fixed(rows));
                        let c = consts.len() as u32;
                        consts.push(node.value.clone());
                        vals[i] = NodeVal::Const(c);
                    } else {
                        // constant leaf with the probe batch row count:
                        // batch-broadcast — rows must be bit-identical
                        let first = node.value.row(0);
                        for r in 1..rows {
                            if node.value.row(r) != first {
                                return err(
                                    "constant leaf has probe-batch rows but non-identical row \
                                     contents; cannot batch-broadcast it",
                                );
                            }
                        }
                        spec[i] = Some(RowSpec::Batch);
                        let c = consts.len() as u32;
                        let mut row = Matrix::default();
                        row.reset_shape(1, cols);
                        row.data_mut().copy_from_slice(first);
                        consts.push(row);
                        vals[i] = NodeVal::Node;
                        producer[i] = Some(sym.len());
                        sym.push(Some((SymInstr::Broadcast { src: c }, i)));
                    }
                }
                op => {
                    let s = emit_op(&op, i, &spec, &mut sym, &mut producer, &uses, &is_output)?;
                    spec[i] = Some(s);
                    vals[i] = NodeVal::Node;
                }
            }
        }

        // ---- assign dense buffer ids: inputs first, then surviving
        // instruction outputs in execution order (so operand < out) ----
        let mut buf_of: Vec<Option<u32>> = vec![None; n];
        let mut buf_shapes: Vec<(RowSpec, usize)> = Vec::new();
        let mut input_bufs = Vec::with_capacity(inputs.len());
        let mut input_shapes = Vec::with_capacity(inputs.len());
        for (k, node) in input_nodes.iter().enumerate() {
            let i = node.ok_or_else(|| {
                PlanError(format!("input {k} is unreachable from the plan outputs"))
            })?;
            let id = buf_shapes.len() as u32;
            buf_of[i] = Some(id);
            let shape = (spec[i].expect("input classified"), nodes[i].value.cols());
            buf_shapes.push(shape);
            input_bufs.push(id);
            input_shapes.push(shape);
        }
        let mut instrs = Vec::with_capacity(sym.len());
        let arg_of = |i: usize, vals: &[NodeVal], buf_of: &[Option<u32>]| -> Arg {
            match vals[i] {
                NodeVal::Const(c) => Arg::Const(c),
                _ => Arg::Buf(buf_of[i].expect("operand buffer assigned before use")),
            }
        };
        for entry in sym.iter().flatten() {
            let (template, out_node) = entry;
            let id = buf_shapes.len() as u32;
            buf_of[*out_node] = Some(id);
            buf_shapes.push((
                spec[*out_node].expect("output classified"),
                nodes[*out_node].value.cols(),
            ));
            instrs.push(template.resolve(id, |i| arg_of(i, &vals, &buf_of)));
        }

        let outputs = outputs
            .iter()
            .map(|v| arg_of(v.0, &vals, &buf_of))
            .collect();

        Ok(InferencePlan {
            instrs,
            consts,
            buf_shapes,
            input_bufs,
            input_shapes,
            outputs,
        })
    }

    /// Number of run-time inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_bufs.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of compiled instructions (after dead-code elimination and
    /// affine fusion) — diagnostics for tests and benches.
    pub fn num_instructions(&self) -> usize {
        self.instrs.len()
    }

    /// Replays the plan at `rows` batch rows.
    ///
    /// `fill` is called once per input (in `compile` order) with the
    /// input's zeroed, already-shaped buffer — write the batch data in
    /// place. Returns an accessor over the output matrices, which borrow
    /// `bufs` until dropped.
    pub fn run<'b>(
        &'b self,
        bufs: &'b mut PlanBuffers,
        rows: usize,
        mut fill: impl FnMut(usize, &mut Matrix),
    ) -> PlanOutputs<'b> {
        if bufs.bufs.len() < self.buf_shapes.len() {
            bufs.bufs
                .resize_with(self.buf_shapes.len(), Matrix::default);
        }
        for (k, &b) in self.input_bufs.iter().enumerate() {
            let (rspec, cols) = self.input_shapes[k];
            let m = &mut bufs.bufs[b as usize];
            m.reset_zero(rspec.resolve(rows), cols);
            fill(k, m);
        }
        for instr in &self.instrs {
            self.exec(instr, &mut bufs.bufs, rows);
        }
        PlanOutputs { plan: self, bufs }
    }

    fn exec(&self, instr: &Instr, bufs: &mut [Matrix], rows: usize) {
        let out_id = instr.out() as usize;
        let (rspec, cols) = self.buf_shapes[out_id];
        let (lower, rest) = bufs.split_at_mut(out_id);
        let out = &mut rest[0];
        out.reset_shape(rspec.resolve(rows), cols);
        let val = |a: Arg| -> &Matrix {
            match a {
                Arg::Buf(b) => &lower[b as usize],
                Arg::Const(c) => &self.consts[c as usize],
            }
        };
        match *instr {
            Instr::Broadcast { src, .. } => {
                let row = &self.consts[src as usize];
                if row.cols() == 1 {
                    out.fill(row.get(0, 0));
                } else {
                    for chunk in out.data_mut().chunks_exact_mut(row.cols()) {
                        chunk.copy_from_slice(row.row(0));
                    }
                }
            }
            Instr::Affine { x, w, b, act, .. } => {
                // exactly the tape's matmul → +bias → activation scalar
                // sequence, in one output buffer (the epilogue runs as a
                // cache-hot pass over the matmul result)
                val(x).matmul_into(val(w), out);
                let bias = val(b);
                match act {
                    None => bias_act(bias, out, |v| v),
                    Some(a) => a.run_bias_act(bias, out),
                }
            }
            Instr::MatMul { a, b, .. } => val(a).matmul_into(val(b), out),
            Instr::AddRowVec { m, row, .. } => fwd::add_row_vec(val(m), val(row), out),
            Instr::MulColVec { m, col, .. } => fwd::mul_col_vec(val(m), val(col), out),
            Instr::Binary { op, a, b, .. } => {
                let f = match op {
                    BinOp::Add => |x: f32, y: f32| x + y,
                    BinOp::Sub => |x: f32, y: f32| x - y,
                    BinOp::Mul => |x: f32, y: f32| x * y,
                };
                fwd::binary_zip(val(a), val(b), out, f)
            }
            Instr::Unary { op, a, .. } => op.run(val(a), out),
            Instr::SoftmaxRows { a, .. } => fwd::softmax_rows(val(a), out),
            Instr::Sum { a, .. } => {
                let s = val(a).sum() as f32;
                out.data_mut()[0] = s;
            }
            Instr::Mean { a, .. } => {
                let m = val(a).mean() as f32;
                out.data_mut()[0] = m;
            }
            Instr::RowSum { a, .. } => fwd::row_sum(val(a), out),
            Instr::ConcatCols { a, b, .. } => fwd::concat_cols(val(a), val(b), out),
            Instr::SliceCols { a, start, end, .. } => {
                fwd::slice_cols(val(a), start as usize, end as usize, out)
            }
            Instr::CumsumCols { a, .. } => fwd::cumsum_cols(val(a), out),
            Instr::Norml2 { a, eps, .. } => fwd::norml2(val(a), eps, out),
            Instr::PwlInterp { tau, p, t, .. } => {
                fwd::pwl_interp(val(tau), val(p), val(t), out, None)
            }
            Instr::BlockLinear {
                input,
                weight,
                bias,
                ..
            } => fwd::block_linear(val(input), val(weight), val(bias), out),
            Instr::Lattice { input, params, .. } => fwd::lattice(val(input), val(params), out),
        }
    }
}

/// A symbolic instruction: operands are still *node ids*; buffer ids are
/// assigned after fusion.
#[derive(Clone, Copy, Debug)]
enum SymInstr {
    Broadcast {
        src: u32,
    },
    Affine {
        x: usize,
        w: usize,
        b: usize,
        act: Option<UnOp>,
    },
    MatMul {
        a: usize,
        b: usize,
    },
    AddRowVec {
        m: usize,
        row: usize,
    },
    MulColVec {
        m: usize,
        col: usize,
    },
    Binary {
        op: BinOp,
        a: usize,
        b: usize,
    },
    Unary {
        op: UnOp,
        a: usize,
    },
    SoftmaxRows {
        a: usize,
    },
    Sum {
        a: usize,
    },
    Mean {
        a: usize,
    },
    RowSum {
        a: usize,
    },
    ConcatCols {
        a: usize,
        b: usize,
    },
    SliceCols {
        a: usize,
        start: u32,
        end: u32,
    },
    CumsumCols {
        a: usize,
    },
    Norml2 {
        a: usize,
        eps: f32,
    },
    PwlInterp {
        tau: usize,
        p: usize,
        t: usize,
    },
    BlockLinear {
        input: usize,
        weight: usize,
        bias: usize,
    },
    Lattice {
        input: usize,
        params: usize,
    },
}

impl SymInstr {
    fn resolve(&self, out: u32, mut arg: impl FnMut(usize) -> Arg) -> Instr {
        match *self {
            SymInstr::Broadcast { src } => Instr::Broadcast { src, out },
            SymInstr::Affine { x, w, b, act } => Instr::Affine {
                x: arg(x),
                w: arg(w),
                b: arg(b),
                act,
                out,
            },
            SymInstr::MatMul { a, b } => Instr::MatMul {
                a: arg(a),
                b: arg(b),
                out,
            },
            SymInstr::AddRowVec { m, row } => Instr::AddRowVec {
                m: arg(m),
                row: arg(row),
                out,
            },
            SymInstr::MulColVec { m, col } => Instr::MulColVec {
                m: arg(m),
                col: arg(col),
                out,
            },
            SymInstr::Binary { op, a, b } => Instr::Binary {
                op,
                a: arg(a),
                b: arg(b),
                out,
            },
            SymInstr::Unary { op, a } => Instr::Unary { op, a: arg(a), out },
            SymInstr::SoftmaxRows { a } => Instr::SoftmaxRows { a: arg(a), out },
            SymInstr::Sum { a } => Instr::Sum { a: arg(a), out },
            SymInstr::Mean { a } => Instr::Mean { a: arg(a), out },
            SymInstr::RowSum { a } => Instr::RowSum { a: arg(a), out },
            SymInstr::ConcatCols { a, b } => Instr::ConcatCols {
                a: arg(a),
                b: arg(b),
                out,
            },
            SymInstr::SliceCols { a, start, end } => Instr::SliceCols {
                a: arg(a),
                start,
                end,
                out,
            },
            SymInstr::CumsumCols { a } => Instr::CumsumCols { a: arg(a), out },
            SymInstr::Norml2 { a, eps } => Instr::Norml2 {
                a: arg(a),
                eps,
                out,
            },
            SymInstr::PwlInterp { tau, p, t } => Instr::PwlInterp {
                tau: arg(tau),
                p: arg(p),
                t: arg(t),
                out,
            },
            SymInstr::BlockLinear {
                input,
                weight,
                bias,
            } => Instr::BlockLinear {
                input: arg(input),
                weight: arg(weight),
                bias: arg(bias),
                out,
            },
            SymInstr::Lattice { input, params } => Instr::Lattice {
                input: arg(input),
                params: arg(params),
                out,
            },
        }
    }
}

/// Visits the tape-node inputs of an op.
fn for_each_input(op: &Op, mut f: impl FnMut(usize)) {
    match *op {
        Op::Leaf => {}
        Op::MatMul(a, b)
        | Op::Add(a, b)
        | Op::Sub(a, b)
        | Op::Mul(a, b)
        | Op::AddRowVec(a, b)
        | Op::MulColVec(a, b)
        | Op::ConcatCols(a, b) => {
            f(a);
            f(b);
        }
        Op::Scale(a, _)
        | Op::AddScalar(a, _)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::EluPlusOne(a)
        | Op::Softplus(a)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Exp(a)
        | Op::LnEps(a, _)
        | Op::Abs(a)
        | Op::Square(a)
        | Op::SoftmaxRows(a)
        | Op::Sum(a)
        | Op::Mean(a)
        | Op::RowSum(a)
        | Op::SliceCols(a, _, _)
        | Op::CumsumCols(a)
        | Op::Norml2(a, _)
        | Op::Huber(a, _) => f(a),
        Op::PwlInterp { tau, p, t } => {
            f(tau);
            f(p);
            f(t);
        }
        Op::BlockLinear {
            input,
            weight,
            bias,
            ..
        } => {
            f(input);
            f(weight);
            f(bias);
        }
        Op::Lattice { input, params } => {
            f(input);
            f(params);
        }
    }
}

/// The unary-op template for a tape op, if it is elementwise.
fn unop_of(op: &Op) -> Option<(UnOp, usize)> {
    Some(match *op {
        Op::Relu(a) => (UnOp::Relu, a),
        Op::LeakyRelu(a, alpha) => (UnOp::LeakyRelu(alpha), a),
        Op::EluPlusOne(a) => (UnOp::EluPlusOne, a),
        Op::Softplus(a) => (UnOp::Softplus, a),
        Op::Sigmoid(a) => (UnOp::Sigmoid, a),
        Op::Tanh(a) => (UnOp::Tanh, a),
        Op::Exp(a) => (UnOp::Exp, a),
        Op::LnEps(a, eps) => (UnOp::LnEps(eps), a),
        Op::Abs(a) => (UnOp::Abs, a),
        Op::Square(a) => (UnOp::Square, a),
        Op::Scale(a, alpha) => (UnOp::Scale(alpha), a),
        Op::AddScalar(a, c) => (UnOp::AddScalar(c), a),
        Op::Huber(a, delta) => (UnOp::Huber(delta), a),
        _ => return None,
    })
}

/// Appends a symbolic instruction for `node_id`.
fn push_sym(
    sym: &mut Vec<Option<(SymInstr, usize)>>,
    producer: &mut [Option<usize>],
    node_id: usize,
    instr: SymInstr,
) {
    producer[node_id] = Some(sym.len());
    sym.push(Some((instr, node_id)));
}

/// Emits the symbolic instruction for a non-leaf tape op, fusing
/// `matmul → add_row_vec → activation` chains, and returns the node's
/// [`RowSpec`].
fn emit_op(
    op: &Op,
    node_id: usize,
    spec: &[Option<RowSpec>],
    sym: &mut Vec<Option<(SymInstr, usize)>>,
    producer: &mut [Option<usize>],
    uses: &[usize],
    is_output: &[bool],
) -> Result<RowSpec, PlanError> {
    let sp = |i: usize| -> Result<RowSpec, PlanError> {
        spec[i].ok_or_else(|| PlanError("operand of an op was eliminated or unclassified".into()))
    };
    // elementwise shape rule: same rows spec on both sides
    let same = |a: usize, b: usize| -> Result<RowSpec, PlanError> {
        let (sa, sb) = (sp(a)?, sp(b)?);
        if sa != sb {
            return err(format!(
                "elementwise op mixes batch-scaled and fixed operands ({sa:?} vs {sb:?}); \
                 this tape cannot scale with the batch size"
            ));
        }
        Ok(sa)
    };
    // activation fusion first: any elementwise unary riding a single-use
    // affine collapses into its `act`
    if let Some((unop, a)) = unop_of(op) {
        let rspec = sp(a)?;
        if uses[a] == 1 && !is_output[a] {
            if let Some(site) = producer[a] {
                if let Some((SymInstr::Affine { x, w, b, act: None }, _)) = sym[site] {
                    sym[site] = None;
                    push_sym(
                        sym,
                        producer,
                        node_id,
                        SymInstr::Affine {
                            x,
                            w,
                            b,
                            act: Some(unop),
                        },
                    );
                    return Ok(rspec);
                }
            }
        }
        push_sym(sym, producer, node_id, SymInstr::Unary { op: unop, a });
        return Ok(rspec);
    }
    let (instr, rspec) = match *op {
        Op::Leaf => unreachable!("leaves handled by the caller"),
        Op::MatMul(a, b) => {
            if sp(b)? == RowSpec::Batch {
                return err("matmul right-hand side cannot be batch-scaled");
            }
            (SymInstr::MatMul { a, b }, sp(a)?)
        }
        Op::Add(a, b) => (
            SymInstr::Binary {
                op: BinOp::Add,
                a,
                b,
            },
            same(a, b)?,
        ),
        Op::Sub(a, b) => (
            SymInstr::Binary {
                op: BinOp::Sub,
                a,
                b,
            },
            same(a, b)?,
        ),
        Op::Mul(a, b) => (
            SymInstr::Binary {
                op: BinOp::Mul,
                a,
                b,
            },
            same(a, b)?,
        ),
        Op::AddRowVec(m, row) => {
            if sp(row)? == RowSpec::Batch {
                return err("add_row_vec bias cannot be batch-scaled");
            }
            let rspec = sp(m)?;
            // fuse onto a single-use matmul producing `m`
            if uses[m] == 1 && !is_output[m] {
                if let Some(site) = producer[m] {
                    if let Some((SymInstr::MatMul { a, b }, _)) = sym[site] {
                        sym[site] = None;
                        push_sym(
                            sym,
                            producer,
                            node_id,
                            SymInstr::Affine {
                                x: a,
                                w: b,
                                b: row,
                                act: None,
                            },
                        );
                        return Ok(rspec);
                    }
                }
            }
            (SymInstr::AddRowVec { m, row }, rspec)
        }
        Op::MulColVec(m, col) => (SymInstr::MulColVec { m, col }, same(m, col)?),
        Op::SoftmaxRows(a) => (SymInstr::SoftmaxRows { a }, sp(a)?),
        Op::Sum(a) => (SymInstr::Sum { a }, RowSpec::Fixed(1)),
        Op::Mean(a) => (SymInstr::Mean { a }, RowSpec::Fixed(1)),
        Op::RowSum(a) => (SymInstr::RowSum { a }, sp(a)?),
        Op::ConcatCols(a, b) => (SymInstr::ConcatCols { a, b }, same(a, b)?),
        Op::SliceCols(a, start, end) => (
            SymInstr::SliceCols {
                a,
                start: start as u32,
                end: end as u32,
            },
            sp(a)?,
        ),
        Op::CumsumCols(a) => (SymInstr::CumsumCols { a }, sp(a)?),
        Op::Norml2(a, eps) => (SymInstr::Norml2 { a, eps }, sp(a)?),
        Op::PwlInterp { tau, p, t } => {
            let st = sp(t)?;
            for (name, v) in [("tau", tau), ("p", p)] {
                let s = sp(v)?;
                let broadcast = matches!(s, RowSpec::Fixed(1));
                if !broadcast && s != st {
                    return err(format!(
                        "pwl_interp {name} must broadcast from one row or match t's scaling"
                    ));
                }
            }
            (SymInstr::PwlInterp { tau, p, t }, st)
        }
        Op::BlockLinear {
            input,
            weight,
            bias,
            ..
        } => {
            if sp(weight)? == RowSpec::Batch || sp(bias)? == RowSpec::Batch {
                return err("block_linear weight/bias cannot be batch-scaled");
            }
            (
                SymInstr::BlockLinear {
                    input,
                    weight,
                    bias,
                },
                sp(input)?,
            )
        }
        Op::Lattice { input, params } => {
            if sp(params)? == RowSpec::Batch {
                return err("lattice params cannot be batch-scaled");
            }
            (SymInstr::Lattice { input, params }, sp(input)?)
        }
        // every elementwise unary was handled by `unop_of` above
        _ => unreachable!("unary ops handled above"),
    };
    push_sym(sym, producer, node_id, instr);
    Ok(rspec)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Record `relu(x @ w + b)` on a tape, compile, and replay at several
    /// row counts; replay must match a fresh tape forward bit for bit.
    #[test]
    fn affine_fusion_matches_tape() {
        let w = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.37);
        let b = Matrix::row_vector(&[0.1, -0.2, 0.3, -0.4]);
        let probe_x = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32 * 0.11 - 0.2);

        let mut g = Graph::new();
        let xv = g.leaf_ref(&probe_x);
        let wv = g.leaf_ref(&w);
        let bv = g.leaf_ref(&b);
        let mm = g.matmul(xv, wv);
        let aff = g.add_row_vec(mm, bv);
        let y = g.relu(aff);
        let plan = InferencePlan::compile(&g, &[(xv, true)], &[y]).expect("compilable");
        assert_eq!(plan.num_instructions(), 1, "matmul+bias+relu must fuse");

        let mut bufs = PlanBuffers::new();
        for rows in [1usize, 2, 5, 64] {
            let x = Matrix::from_fn(rows, 3, |i, j| ((i * 7 + j) as f32).sin());
            let got = plan.run(&mut bufs, rows, |_, m| {
                m.data_mut().copy_from_slice(x.data())
            });
            let mut fresh = Graph::new();
            let xv = fresh.leaf_ref(&x);
            let wv = fresh.leaf_ref(&w);
            let bv = fresh.leaf_ref(&b);
            let mm = fresh.matmul(xv, wv);
            let aff = fresh.add_row_vec(mm, bv);
            let yv = fresh.relu(aff);
            assert_eq!(got.output(0).data(), fresh.value(yv).data(), "rows {rows}");
        }
    }

    /// A fixed (non-batch) input keeps its probe rows across runs.
    #[test]
    fn fixed_input_and_broadcast_const() {
        let mut g = Graph::new();
        // x: fixed single row input; t: batch column; zeros: batch const
        let xv = g.leaf_with(1, 2, |d| d.copy_from_slice(&[0.5, -0.5]));
        let tv = g.leaf_with(3, 1, |d| d.copy_from_slice(&[0.1, 0.2, 0.3]));
        let zeros = g.leaf_with(3, 1, |_| {});
        let tz = g.add(tv, zeros);
        let tau = g.cumsum_cols(xv);
        let y = g.pwl_interp(tau, xv, tz);
        let plan = InferencePlan::compile(&g, &[(xv, false), (tv, true)], &[y]).expect("compiles");

        let mut bufs = PlanBuffers::new();
        let ts = [0.05f32, 0.15, 0.25, 0.35, 0.45];
        let out = plan.run(&mut bufs, ts.len(), |k, m| match k {
            0 => m.data_mut().copy_from_slice(&[0.5, -0.5]),
            _ => m.data_mut().copy_from_slice(&ts),
        });
        // reference on a fresh tape
        let mut fresh = Graph::new();
        let xv = fresh.leaf_with(1, 2, |d| d.copy_from_slice(&[0.5, -0.5]));
        let tv = fresh.leaf_with(5, 1, |d| d.copy_from_slice(&ts));
        let zeros = fresh.leaf_with(5, 1, |_| {});
        let tz = fresh.add(tv, zeros);
        let tau = fresh.cumsum_cols(xv);
        let y = fresh.pwl_interp(tau, xv, tz);
        assert_eq!(out.output(0).data(), fresh.value(y).data());
    }

    #[test]
    fn mixed_scaling_is_rejected() {
        let mut g = Graph::new();
        let a = g.leaf_with(2, 2, |d| d.fill(1.0)); // batch input
        let b = g.leaf_with(2, 2, |d| {
            d.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]) // fixed const, 2 rows,
                                                     // rows differ => no broadcast
        });
        let c = g.add(a, b);
        let e = InferencePlan::compile(&g, &[(a, true)], &[c]).unwrap_err();
        assert!(e.to_string().contains("cannot"), "{e}");
    }
}
