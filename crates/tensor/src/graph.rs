//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a fresh tape per training step. Operations evaluate
//! eagerly (values are computed when the op is recorded) and record enough
//! information for the backward sweep. [`Graph::backward`] walks the tape in
//! reverse, accumulating gradients into every node.
//!
//! Besides the standard neural-network ops, the tape implements the fused
//! operations the SelNet paper needs:
//!
//! * [`Graph::norml2`] — the paper's `Norml2` normalized-square map (§5.2),
//! * [`Graph::cumsum_cols`] — the prefix-sum (`M_psum`) operator,
//! * [`Graph::pwl_interp`] — evaluation of the continuous piece-wise linear
//!   estimator (Eq. 1) with gradients to both control-point vectors,
//! * [`Graph::block_linear`] — the per-control-point decoder of model M,
//! * [`Graph::lattice`] — multilinear lattice interpolation (used by the
//!   DLN baseline),
//! * [`Graph::huber`] — the robust Huber loss (δ = 1.345 by default).

use crate::matrix::Matrix;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Identifier of a trainable parameter inside a
/// [`ParamStore`](crate::params::ParamStore).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Dense index of the parameter inside its store (ids are assigned in
    /// registration order), e.g. for merging gradients computed on
    /// independent tapes.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Clone, Debug)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// matrix (R x C) + row vector (1 x C) broadcast over rows
    AddRowVec(usize, usize),
    /// matrix (R x C) * column vector (R x 1) broadcast over columns
    MulColVec(usize, usize),
    Scale(usize, f32),
    AddScalar(usize),
    Relu(usize),
    LeakyRelu(usize, f32),
    /// `elu(x) + 1`, strictly positive; used by UMNN's integrand.
    EluPlusOne(usize),
    Softplus(usize),
    Sigmoid(usize),
    Tanh(usize),
    Exp(usize),
    /// `ln(max(x, 0) + eps)`
    LnEps(usize, f32),
    Abs(usize),
    Square(usize),
    SoftmaxRows(usize),
    Sum(usize),
    Mean(usize),
    RowSum(usize),
    ConcatCols(usize, usize),
    SliceCols(usize, usize, usize),
    CumsumCols(usize),
    Norml2(usize, f32),
    Huber(usize, f32),
    PwlInterp {
        tau: usize,
        p: usize,
        t: usize,
        /// per-row segment index chosen in the forward pass (-1 below, -2 above range)
        segments: Vec<i64>,
    },
    BlockLinear {
        input: usize,
        weight: usize,
        bias: usize,
        blocks: usize,
    },
    Lattice {
        input: usize,
        params: usize,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    param: Option<ParamId>,
}

/// A fresh autodiff tape. Build the computation with the op methods, then
/// call [`Graph::backward`] on a scalar node.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant leaf (inputs, targets). It still receives a
    /// gradient during the backward sweep, which is simply discarded.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a trainable-parameter leaf tagged with `id` so its gradient
    /// can be collected after [`Graph::backward`].
    pub fn param_leaf(&mut self, id: ParamId, value: Matrix) -> Var {
        let v = self.push(value, Op::Leaf);
        self.nodes[v.0].param = Some(id);
        v
    }

    /// The value held at `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient accumulated at `v`; zeros if backward never reached it.
    pub fn grad(&self, v: Var) -> Matrix {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => Matrix::zeros(self.nodes[v.0].value.rows(), self.nodes[v.0].value.cols()),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Collects `(ParamId, gradient)` pairs for every parameter leaf.
    pub fn param_grads(&self) -> Vec<(ParamId, Matrix)> {
        self.nodes
            .iter()
            .filter_map(|n| {
                n.param.map(|id| {
                    (
                        id,
                        n.grad
                            .clone()
                            .unwrap_or_else(|| Matrix::zeros(n.value.rows(), n.value.cols())),
                    )
                })
            })
            .collect()
    }

    // ---- binary ops ----

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Elementwise sum of two same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = {
            let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            va.zip_map(vb, |x, y| x + y)
        };
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = {
            let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            va.zip_map(vb, |x, y| x - y)
        };
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = {
            let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            va.zip_map(vb, |x, y| x * y)
        };
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Adds a `1 x C` row vector to every row of an `R x C` matrix
    /// (the bias op).
    pub fn add_row_vec(&mut self, m: Var, row: Var) -> Var {
        let v = {
            let (vm, vr) = (&self.nodes[m.0].value, &self.nodes[row.0].value);
            assert_eq!(vr.rows(), 1, "add_row_vec: rhs must be a row vector");
            assert_eq!(vm.cols(), vr.cols(), "add_row_vec: column mismatch");
            let mut out = vm.clone();
            for i in 0..out.rows() {
                let r = out.row_mut(i);
                for (o, &b) in r.iter_mut().zip(vr.data()) {
                    *o += b;
                }
            }
            out
        };
        self.push(v, Op::AddRowVec(m.0, row.0))
    }

    /// Multiplies every column of an `R x C` matrix by an `R x 1` column
    /// vector (per-row scaling, e.g. gate weights).
    pub fn mul_col_vec(&mut self, m: Var, col: Var) -> Var {
        let v = {
            let (vm, vc) = (&self.nodes[m.0].value, &self.nodes[col.0].value);
            assert_eq!(vc.cols(), 1, "mul_col_vec: rhs must be a column vector");
            assert_eq!(vm.rows(), vc.rows(), "mul_col_vec: row mismatch");
            let mut out = vm.clone();
            for i in 0..out.rows() {
                let s = vc.get(i, 0);
                for o in out.row_mut(i) {
                    *o *= s;
                }
            }
            out
        };
        self.push(v, Op::MulColVec(m.0, col.0))
    }

    // ---- scalar ops ----

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * alpha);
        self.push(v, Op::Scale(a.0, alpha))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + c);
        self.push(v, Op::AddScalar(a.0))
    }

    // ---- unary activations ----

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(v, Op::LeakyRelu(a.0, alpha))
    }

    /// `elu(x) + 1 = exp(x)` for `x <= 0`, `x + 1` for `x > 0`; strictly
    /// positive, used for UMNN's positive integrand.
    pub fn elu_plus_one(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x + 1.0 } else { x.exp() });
        self.push(v, Op::EluPlusOne(a.0))
    }

    /// Numerically-stable softplus `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| {
            if x > 20.0 {
                x
            } else if x < -20.0 {
                x.exp()
            } else {
                x.exp().ln_1p()
            }
        });
        self.push(v, Op::Softplus(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise exponential (inputs are clamped to 30 to stay finite).
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.min(30.0).exp());
        self.push(v, Op::Exp(a.0))
    }

    /// `ln(max(x, 0) + eps)` — the log-space mapping used by the paper's
    /// loss (the `eps` padding prevents `ln 0`).
    pub fn ln_eps(&mut self, a: Var, eps: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| (x.max(0.0) + eps).ln());
        self.push(v, Op::LnEps(a.0, eps))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::abs);
        self.push(v, Op::Abs(a.0))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * x);
        self.push(v, Op::Square(a.0))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let mut out = va.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(out, Op::SoftmaxRows(a.0))
    }

    // ---- reductions ----

    /// Sum of all elements as a `1 x 1` node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.nodes[a.0].value.sum() as f32);
        self.push(v, Op::Sum(a.0))
    }

    /// Mean of all elements as a `1 x 1` node.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.nodes[a.0].value.mean() as f32);
        self.push(v, Op::Mean(a.0))
    }

    /// Per-row sum as an `R x 1` node.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.row_sums();
        self.push(v, Op::RowSum(a.0))
    }

    // ---- structural ops ----

    /// Concatenates two matrices with the same row count along columns.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hstack(&self.nodes[b.0].value);
        self.push(v, Op::ConcatCols(a.0, b.0))
    }

    /// Extracts columns `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let va = &self.nodes[a.0].value;
        assert!(start <= end && end <= va.cols(), "slice_cols out of range");
        let mut out = Matrix::zeros(va.rows(), end - start);
        for i in 0..va.rows() {
            out.row_mut(i).copy_from_slice(&va.row(i)[start..end]);
        }
        self.push(out, Op::SliceCols(a.0, start, end))
    }

    /// Per-row prefix sum: `out[i][j] = sum_{k <= j} in[i][k]`.
    ///
    /// This is the `M_psum` operator from the paper's network architecture
    /// (§5.2), which converts learned increments into non-decreasing control
    /// point sequences.
    pub fn cumsum_cols(&mut self, a: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let mut out = va.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let mut acc = 0.0f32;
            for x in row.iter_mut() {
                acc += *x;
                *x = acc;
            }
        }
        self.push(out, Op::CumsumCols(a.0))
    }

    /// The paper's `Norml2` normalized-square map (§5.2):
    /// `out_i = (x_i^2 + eps/d) / (x·x + eps)` per row. Every output row is
    /// positive and sums to exactly 1, which turns the following cumulative
    /// sum into a partition of `[0, 1]`.
    pub fn norml2(&mut self, a: Var, eps: f32) -> Var {
        let va = &self.nodes[a.0].value;
        let d = va.cols() as f32;
        let mut out = va.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let dot: f32 = row.iter().map(|&x| x * x).sum();
            let denom = dot + eps;
            for x in row.iter_mut() {
                *x = (*x * *x + eps / d) / denom;
            }
        }
        self.push(out, Op::Norml2(a.0, eps))
    }

    /// Elementwise Huber with parameter `delta`:
    /// `r^2/2` for `|r| <= delta`, `delta(|r| - delta/2)` otherwise.
    pub fn huber(&mut self, a: Var, delta: f32) -> Var {
        let v = self.nodes[a.0].value.map(|r| {
            if r.abs() <= delta {
                0.5 * r * r
            } else {
                delta * (r.abs() - 0.5 * delta)
            }
        });
        self.push(v, Op::Huber(a.0, delta))
    }

    /// Evaluates the continuous piece-wise linear function of Eq. (1).
    ///
    /// * `tau`: control-point abscissae, `R x m` (or `1 x m`, broadcast),
    ///   assumed non-decreasing along each row;
    /// * `p`: control-point ordinates, same shape rules;
    /// * `t`: evaluation points, `R x 1`.
    ///
    /// `t` below `tau[0]` clamps to `p[0]`; `t` at or above `tau[m-1]`
    /// clamps to `p[m-1]`. Gradients flow to `tau`, `p`, and `t`.
    pub fn pwl_interp(&mut self, tau: Var, p: Var, t: Var) -> Var {
        let (vt, vtau, vp) = (
            &self.nodes[t.0].value,
            &self.nodes[tau.0].value,
            &self.nodes[p.0].value,
        );
        let rows = vt.rows();
        assert_eq!(vt.cols(), 1, "pwl_interp: t must be a column vector");
        assert_eq!(vtau.cols(), vp.cols(), "pwl_interp: tau/p length mismatch");
        assert!(
            vtau.cols() >= 2,
            "pwl_interp: need at least two control points"
        );
        for (name, m) in [("tau", vtau), ("p", vp)] {
            assert!(
                m.rows() == rows || m.rows() == 1,
                "pwl_interp: {name} must have {rows} rows or broadcast from 1"
            );
        }
        let m = vtau.cols();
        let mut out = Matrix::zeros(rows, 1);
        let mut segments = vec![0i64; rows];
        // index-driven on purpose: three parallel row-broadcast matrices
        #[allow(clippy::needless_range_loop)]
        for r in 0..rows {
            let tr = vt.get(r, 0);
            let taur = vtau.row(if vtau.rows() == 1 { 0 } else { r });
            let pr = vp.row(if vp.rows() == 1 { 0 } else { r });
            if tr < taur[0] {
                segments[r] = -1;
                out.set(r, 0, pr[0]);
            } else if tr >= taur[m - 1] {
                segments[r] = -2;
                out.set(r, 0, pr[m - 1]);
            } else {
                // binary search for the segment i with taur[i] <= tr < taur[i+1]
                let mut lo = 0usize;
                let mut hi = m - 1;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if taur[mid] <= tr {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let denom = (taur[lo + 1] - taur[lo]).max(1e-12);
                let alpha = (tr - taur[lo]) / denom;
                segments[r] = lo as i64;
                out.set(r, 0, pr[lo] + alpha * (pr[lo + 1] - pr[lo]));
            }
        }
        self.push(
            out,
            Op::PwlInterp {
                tau: tau.0,
                p: p.0,
                t: t.0,
                segments,
            },
        )
    }

    /// Per-block linear map — the decoder of the paper's model M (§5.2).
    ///
    /// `input` is `R x (blocks*h)`, interpreted as `blocks` contiguous
    /// chunks of width `h`; `weight` is `blocks x h`; `bias` is
    /// `1 x blocks`. Output `R x blocks` with
    /// `out[r][i] = input[r, i*h..][..h] · weight[i] + bias[i]`.
    pub fn block_linear(&mut self, input: Var, weight: Var, bias: Var) -> Var {
        let (vi, vw, vb) = (
            &self.nodes[input.0].value,
            &self.nodes[weight.0].value,
            &self.nodes[bias.0].value,
        );
        let blocks = vw.rows();
        let h = vw.cols();
        assert_eq!(vi.cols(), blocks * h, "block_linear: input width mismatch");
        assert_eq!(vb.shape(), (1, blocks), "block_linear: bias shape mismatch");
        let mut out = Matrix::zeros(vi.rows(), blocks);
        for r in 0..vi.rows() {
            let row = vi.row(r);
            for i in 0..blocks {
                let chunk = &row[i * h..(i + 1) * h];
                let w = vw.row(i);
                let mut acc = vb.get(0, i);
                for (&x, &wv) in chunk.iter().zip(w) {
                    acc += x * wv;
                }
                out.set(r, i, acc);
            }
        }
        self.push(
            out,
            Op::BlockLinear {
                input: input.0,
                weight: weight.0,
                bias: bias.0,
                blocks,
            },
        )
    }

    /// Multilinear lattice interpolation over the unit hypercube.
    ///
    /// `input` is `R x m` with entries clamped to `[0, 1]`; `params` is
    /// `1 x 2^m` holding the lattice vertex values indexed by the bitmask of
    /// upper coordinates (bit `j` set = upper vertex along dim `j`).
    /// Used by the DLN baseline's lattice layers.
    pub fn lattice(&mut self, input: Var, params: Var) -> Var {
        let (vi, vp) = (&self.nodes[input.0].value, &self.nodes[params.0].value);
        let m = vi.cols();
        assert!(m <= 16, "lattice: dimension too large (2^m params)");
        assert_eq!(
            vp.shape(),
            (1, 1usize << m),
            "lattice: params must be 1 x 2^m"
        );
        let mut out = Matrix::zeros(vi.rows(), 1);
        for r in 0..vi.rows() {
            let x = vi.row(r);
            let mut acc = 0.0f32;
            for mask in 0..(1usize << m) {
                let mut w = 1.0f32;
                for (j, &xj) in x.iter().enumerate() {
                    let c = xj.clamp(0.0, 1.0);
                    w *= if mask >> j & 1 == 1 { c } else { 1.0 - c };
                }
                acc += w * vp.get(0, mask);
            }
            out.set(r, 0, acc);
        }
        self.push(
            out,
            Op::Lattice {
                input: input.0,
                params: params.0,
            },
        )
    }

    // ---- backward ----

    /// Runs the reverse sweep from `loss`, which must be `1 x 1`. Gradients
    /// accumulate in every reachable node and can be read with
    /// [`Graph::grad`] / [`Graph::param_grads`].
    pub fn backward(&mut self, loss: Var) {
        {
            let n = &self.nodes[loss.0];
            assert_eq!(n.value.shape(), (1, 1), "backward: loss must be scalar");
        }
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::full(1, 1, 1.0));
        for idx in (0..=loss.0).rev() {
            let Some(gout) = self.nodes[idx].grad.take() else {
                continue;
            };
            let op = self.nodes[idx].op.clone();
            self.apply_backward(idx, &op, &gout);
            self.nodes[idx].grad = Some(gout);
        }
    }

    fn accumulate(&mut self, target: usize, grad: Matrix) {
        match &mut self.nodes[target].grad {
            Some(g) => g.add_assign(&grad),
            slot @ None => *slot = Some(grad),
        }
    }

    fn apply_backward(&mut self, idx: usize, op: &Op, gout: &Matrix) {
        match *op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let ga = gout.matmul_a_bt(&self.nodes[b].value);
                let gb = self.nodes[a].value.matmul_at_b(gout);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Add(a, b) => {
                self.accumulate(a, gout.clone());
                self.accumulate(b, gout.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(a, gout.clone());
                self.accumulate(b, gout.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let ga = gout.zip_map(&self.nodes[b].value, |g, y| g * y);
                let gb = gout.zip_map(&self.nodes[a].value, |g, x| g * x);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::AddRowVec(m, row) => {
                self.accumulate(m, gout.clone());
                self.accumulate(row, gout.col_sums());
            }
            Op::MulColVec(m, col) => {
                let vcol = self.nodes[col].value.clone();
                let vm = self.nodes[m].value.clone();
                let mut gm = gout.clone();
                for i in 0..gm.rows() {
                    let s = vcol.get(i, 0);
                    for x in gm.row_mut(i) {
                        *x *= s;
                    }
                }
                let mut gc = Matrix::zeros(vcol.rows(), 1);
                for i in 0..gout.rows() {
                    let mut acc = 0.0f32;
                    for (g, x) in gout.row(i).iter().zip(vm.row(i)) {
                        acc += g * x;
                    }
                    gc.set(i, 0, acc);
                }
                self.accumulate(m, gm);
                self.accumulate(col, gc);
            }
            Op::Scale(a, alpha) => self.accumulate(a, gout.map(|g| g * alpha)),
            Op::AddScalar(a) => self.accumulate(a, gout.clone()),
            Op::Relu(a) => {
                let g = gout.zip_map(&self.nodes[a].value, |g, x| if x > 0.0 { g } else { 0.0 });
                self.accumulate(a, g);
            }
            Op::LeakyRelu(a, alpha) => {
                let g = gout.zip_map(
                    &self.nodes[a].value,
                    |g, x| if x > 0.0 { g } else { alpha * g },
                );
                self.accumulate(a, g);
            }
            Op::EluPlusOne(a) => {
                let g = gout.zip_map(
                    &self.nodes[a].value,
                    |g, x| if x > 0.0 { g } else { g * x.exp() },
                );
                self.accumulate(a, g);
            }
            Op::Softplus(a) => {
                let g = gout.zip_map(&self.nodes[a].value, |g, x| g / (1.0 + (-x).exp()));
                self.accumulate(a, g);
            }
            Op::Sigmoid(a) => {
                let g = gout.zip_map(&self.nodes[idx].value, |g, y| g * y * (1.0 - y));
                self.accumulate(a, g);
            }
            Op::Tanh(a) => {
                let g = gout.zip_map(&self.nodes[idx].value, |g, y| g * (1.0 - y * y));
                self.accumulate(a, g);
            }
            Op::Exp(a) => {
                let g = gout.zip_map(&self.nodes[idx].value, |g, y| g * y);
                self.accumulate(a, g);
            }
            Op::LnEps(a, eps) => {
                let g = gout.zip_map(&self.nodes[a].value, |g, x| {
                    if x > 0.0 {
                        g / (x + eps)
                    } else {
                        0.0
                    }
                });
                self.accumulate(a, g);
            }
            Op::Abs(a) => {
                let g = gout.zip_map(&self.nodes[a].value, |g, x| g * x.signum());
                self.accumulate(a, g);
            }
            Op::Square(a) => {
                let g = gout.zip_map(&self.nodes[a].value, |g, x| 2.0 * g * x);
                self.accumulate(a, g);
            }
            Op::SoftmaxRows(a) => {
                let y = &self.nodes[idx].value;
                let mut g = Matrix::zeros(y.rows(), y.cols());
                for i in 0..y.rows() {
                    let yr = y.row(i);
                    let gr = gout.row(i);
                    let dot: f32 = yr.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                    for (j, o) in g.row_mut(i).iter_mut().enumerate() {
                        *o = yr[j] * (gr[j] - dot);
                    }
                }
                self.accumulate(a, g);
            }
            Op::Sum(a) => {
                let s = gout.get(0, 0);
                let shape = self.nodes[a].value.shape();
                self.accumulate(a, Matrix::full(shape.0, shape.1, s));
            }
            Op::Mean(a) => {
                let shape = self.nodes[a].value.shape();
                let n = (shape.0 * shape.1).max(1) as f32;
                let s = gout.get(0, 0) / n;
                self.accumulate(a, Matrix::full(shape.0, shape.1, s));
            }
            Op::RowSum(a) => {
                let shape = self.nodes[a].value.shape();
                let mut g = Matrix::zeros(shape.0, shape.1);
                for i in 0..shape.0 {
                    let s = gout.get(i, 0);
                    for x in g.row_mut(i) {
                        *x = s;
                    }
                }
                self.accumulate(a, g);
            }
            Op::ConcatCols(a, b) => {
                let ca = self.nodes[a].value.cols();
                let cb = self.nodes[b].value.cols();
                let rows = gout.rows();
                let mut ga = Matrix::zeros(rows, ca);
                let mut gb = Matrix::zeros(rows, cb);
                for i in 0..rows {
                    let gr = gout.row(i);
                    ga.row_mut(i).copy_from_slice(&gr[..ca]);
                    gb.row_mut(i).copy_from_slice(&gr[ca..]);
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::SliceCols(a, start, _end) => {
                let shape = self.nodes[a].value.shape();
                let mut g = Matrix::zeros(shape.0, shape.1);
                for i in 0..gout.rows() {
                    let gr = gout.row(i);
                    g.row_mut(i)[start..start + gr.len()].copy_from_slice(gr);
                }
                self.accumulate(a, g);
            }
            Op::CumsumCols(a) => {
                // d/dx_k sum over j >= k of gout_j  => reverse cumulative sum
                let mut g = gout.clone();
                for i in 0..g.rows() {
                    let row = g.row_mut(i);
                    let mut acc = 0.0f32;
                    for x in row.iter_mut().rev() {
                        acc += *x;
                        *x = acc;
                    }
                }
                self.accumulate(a, g);
            }
            Op::Norml2(a, eps) => {
                let x = &self.nodes[a].value;
                let d = x.cols() as f32;
                let mut g = Matrix::zeros(x.rows(), x.cols());
                for i in 0..x.rows() {
                    let xr = x.row(i);
                    let gr = gout.row(i);
                    let dot: f32 = xr.iter().map(|&v| v * v).sum();
                    let denom = dot + eps;
                    let denom2 = denom * denom;
                    // out_j = (x_j^2 + eps/d) / denom
                    // d out_j / d x_k = [2 x_j delta_jk * denom - (x_j^2+eps/d) * 2 x_k] / denom^2
                    let weighted: f32 = xr
                        .iter()
                        .zip(gr)
                        .map(|(&xj, &gj)| gj * (xj * xj + eps / d))
                        .sum();
                    for (k, o) in g.row_mut(i).iter_mut().enumerate() {
                        *o = 2.0 * xr[k] * (gr[k] * denom - weighted) / denom2;
                    }
                }
                self.accumulate(a, g);
            }
            Op::Huber(a, delta) => {
                let g = gout.zip_map(&self.nodes[a].value, |g, r| {
                    if r.abs() <= delta {
                        g * r
                    } else {
                        g * delta * r.signum()
                    }
                });
                self.accumulate(a, g);
            }
            Op::PwlInterp {
                tau,
                p,
                t,
                ref segments,
            } => {
                let vtau = self.nodes[tau].value.clone();
                let vp = self.nodes[p].value.clone();
                let vt = self.nodes[t].value.clone();
                let m = vtau.cols();
                let mut gtau = Matrix::zeros(vtau.rows(), vtau.cols());
                let mut gp = Matrix::zeros(vp.rows(), vp.cols());
                let mut gt = Matrix::zeros(vt.rows(), 1);
                // index-driven on purpose: parallel row-broadcast matrices
                #[allow(clippy::needless_range_loop)]
                for r in 0..vt.rows() {
                    let g = gout.get(r, 0);
                    if g == 0.0 {
                        continue;
                    }
                    let rt = if vtau.rows() == 1 { 0 } else { r };
                    let rp = if vp.rows() == 1 { 0 } else { r };
                    match segments[r] {
                        -1 => {
                            gp.set(rp, 0, gp.get(rp, 0) + g);
                        }
                        -2 => {
                            gp.set(rp, m - 1, gp.get(rp, m - 1) + g);
                        }
                        lo => {
                            let lo = lo as usize;
                            let a = vtau.get(rt, lo);
                            let b = vtau.get(rt, lo + 1);
                            let pa = vp.get(rp, lo);
                            let pb = vp.get(rp, lo + 1);
                            let tr = vt.get(r, 0);
                            let denom = (b - a).max(1e-12);
                            let alpha = (tr - a) / denom;
                            let dp = pb - pa;
                            gp.set(rp, lo, gp.get(rp, lo) + g * (1.0 - alpha));
                            gp.set(rp, lo + 1, gp.get(rp, lo + 1) + g * alpha);
                            let d2 = denom * denom;
                            gtau.set(rt, lo, gtau.get(rt, lo) + g * dp * (tr - b) / d2);
                            gtau.set(rt, lo + 1, gtau.get(rt, lo + 1) + g * dp * (a - tr) / d2);
                            gt.set(r, 0, gt.get(r, 0) + g * dp / denom);
                        }
                    }
                }
                self.accumulate(tau, gtau);
                self.accumulate(p, gp);
                self.accumulate(t, gt);
            }
            Op::BlockLinear {
                input,
                weight,
                bias,
                blocks,
            } => {
                let vi = self.nodes[input].value.clone();
                let vw = self.nodes[weight].value.clone();
                let h = vw.cols();
                let mut gi = Matrix::zeros(vi.rows(), vi.cols());
                let mut gw = Matrix::zeros(blocks, h);
                let mut gb = Matrix::zeros(1, blocks);
                for r in 0..vi.rows() {
                    let xrow = vi.row(r);
                    let grow = gout.row(r);
                    let girow = gi.row_mut(r);
                    for (i, &g) in grow.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        gb.set(0, i, gb.get(0, i) + g);
                        let w = vw.row(i);
                        let x = &xrow[i * h..(i + 1) * h];
                        let gx = &mut girow[i * h..(i + 1) * h];
                        for k in 0..h {
                            gx[k] += g * w[k];
                        }
                        let gwrow = gw.row_mut(i);
                        for k in 0..h {
                            gwrow[k] += g * x[k];
                        }
                    }
                }
                self.accumulate(input, gi);
                self.accumulate(weight, gw);
                self.accumulate(bias, gb);
            }
            Op::Lattice { input, params } => {
                let vi = self.nodes[input].value.clone();
                let vp = self.nodes[params].value.clone();
                let m = vi.cols();
                let mut gi = Matrix::zeros(vi.rows(), m);
                let mut gp = Matrix::zeros(1, 1 << m);
                for r in 0..vi.rows() {
                    let g = gout.get(r, 0);
                    if g == 0.0 {
                        continue;
                    }
                    let x = vi.row(r);
                    for mask in 0..(1usize << m) {
                        // weight and its partials
                        let mut w = 1.0f32;
                        for (j, &xj) in x.iter().enumerate() {
                            let c = xj.clamp(0.0, 1.0);
                            w *= if mask >> j & 1 == 1 { c } else { 1.0 - c };
                        }
                        gp.set(0, mask, gp.get(0, mask) + g * w);
                        let pv = vp.get(0, mask);
                        for j in 0..m {
                            let xj = x[j];
                            if !(0.0..=1.0).contains(&xj) {
                                continue; // clamped: zero gradient to input
                            }
                            let mut dw = 1.0f32;
                            for (k, &xk) in x.iter().enumerate() {
                                let c = xk.clamp(0.0, 1.0);
                                if k == j {
                                    dw *= if mask >> k & 1 == 1 { 1.0 } else { -1.0 };
                                } else {
                                    dw *= if mask >> k & 1 == 1 { c } else { 1.0 - c };
                                }
                            }
                            gi.set(r, j, gi.get(r, j) + g * pv * dw);
                        }
                    }
                }
                self.accumulate(input, gi);
                self.accumulate(params, gp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_simple_chain() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 2, vec![1.0, -2.0]));
        let r = g.relu(x);
        assert_eq!(g.value(r).data(), &[1.0, 0.0]);
        let s = g.sum(r);
        assert_eq!(g.value(s).get(0, 0), 1.0);
    }

    #[test]
    fn backward_matmul_chain() {
        // loss = sum(A * B); dL/dA = ones * B^T, dL/dB = A^T * ones
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a).data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.grad(b).data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn norml2_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(
            2,
            4,
            vec![0.5, -1.0, 2.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        ));
        let y = g.norml2(x, 1e-6);
        for i in 0..2 {
            let s: f32 = g.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            assert!(g.value(y).row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn cumsum_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let c = g.cumsum_cols(x);
        assert_eq!(g.value(c).data(), &[1.0, 3.0, 6.0]);
        let s = g.sum(c);
        g.backward(s);
        // d/dx_k = number of outputs depending on x_k = 3 - k
        assert_eq!(g.grad(x).data(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn pwl_interp_basic() {
        let mut g = Graph::new();
        let tau = g.leaf(Matrix::row_vector(&[0.0, 1.0, 2.0]));
        let p = g.leaf(Matrix::row_vector(&[0.0, 10.0, 30.0]));
        let t = g.leaf(Matrix::col_vector(&[0.5, 1.5, -1.0, 5.0]));
        let y = g.pwl_interp(tau, p, t);
        let v = g.value(y);
        assert_eq!(v.data(), &[5.0, 20.0, 0.0, 30.0]);
    }

    #[test]
    fn pwl_interp_monotone_when_p_nondecreasing() {
        let mut g = Graph::new();
        let tau = g.leaf(Matrix::row_vector(&[0.0, 0.3, 0.9, 2.0]));
        let p = g.leaf(Matrix::row_vector(&[0.0, 1.0, 1.0, 7.0]));
        let ts: Vec<f32> = (0..50).map(|i| i as f32 * 0.05).collect();
        let t = g.leaf(Matrix::col_vector(&ts));
        let y = g.pwl_interp(tau, p, t);
        let v = g.value(y);
        for i in 1..ts.len() {
            assert!(v.get(i, 0) >= v.get(i - 1, 0) - 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = g.softmax_rows(x);
        for i in 0..2 {
            let s: f32 = g.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn block_linear_matches_manual() {
        let mut g = Graph::new();
        // 2 blocks of width 2
        let x = g.leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let w = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]));
        let b = g.leaf(Matrix::row_vector(&[0.1, -0.2]));
        let y = g.block_linear(x, w, b);
        let v = g.value(y);
        assert!((v.get(0, 0) - (1.0 + 1.0 + 0.1)).abs() < 1e-6);
        assert!((v.get(0, 1) - (-3.0 + 8.0 - 0.2)).abs() < 1e-6);
    }

    #[test]
    fn lattice_interpolates_corners_and_centers() {
        let mut g = Graph::new();
        // 2-d lattice with vertex values 0,1,2,3 for masks 00,01,10,11
        let p = g.leaf(Matrix::row_vector(&[0.0, 1.0, 2.0, 3.0]));
        let x = g.leaf(Matrix::from_vec(3, 2, vec![0.0, 0.0, 1.0, 1.0, 0.5, 0.5]));
        let y = g.lattice(x, p);
        let v = g.value(y);
        assert!((v.get(0, 0) - 0.0).abs() < 1e-6);
        assert!((v.get(1, 0) - 3.0).abs() < 1e-6);
        assert!((v.get(2, 0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn huber_quadratic_and_linear_regimes() {
        let mut g = Graph::new();
        let r = g.leaf(Matrix::row_vector(&[0.5, 3.0]));
        let h = g.huber(r, 1.0);
        let v = g.value(h);
        assert!((v.get(0, 0) - 0.125).abs() < 1e-6);
        assert!((v.get(0, 1) - (3.0 - 0.5)).abs() < 1e-6);
    }
}
