//! Tape-based reverse-mode automatic differentiation on an **arena of
//! reusable buffers**.
//!
//! A [`Graph`] is a tape of nodes recorded in topological order. Operations
//! evaluate eagerly (values are computed when the op is recorded) and record
//! enough information for the backward sweep. [`Graph::backward`] walks the
//! tape in reverse, accumulating gradients into every node.
//!
//! ## Tape lifecycle: build → forward → backward → [`Graph::reset`]
//!
//! The tape is designed to be **reused across training batches**. Calling
//! [`Graph::reset`] rewinds the tape to empty but keeps every node's value
//! and gradient buffer (and the tape's capacity) alive, so the next batch —
//! which in a training loop records the same op sequence with new data —
//! recycles the previous batch's storage instead of touching the allocator:
//!
//! * op methods write their results **into the recycled value buffers**
//!   (via the `Matrix::*_into` / `reset_*` kernels);
//! * [`Graph::leaf_ref`] / [`Graph::leaf_with`] copy or build leaf data in
//!   place, and [`Graph::param_leaf`] rebinds parameter values by copy
//!   instead of cloning a fresh `Matrix` per batch;
//! * [`Graph::backward`] accumulates gradients **in place** into per-node
//!   gradient buffers (a small scratch pool serves the ops that need a
//!   temporary), allocating nothing after the first batch at a given shape;
//! * [`Graph::param_grad_refs`] hands the optimizer borrowed gradients, so
//!   nothing is cloned on the way to the update step.
//!
//! After a `reset()`, any [`Var`] from the previous batch is **stale**;
//! using one is a logic error and panics in [`Graph::value`] /
//! [`Graph::grad`].
//!
//! ## Determinism contract
//!
//! Reusing a tape is **bit-identical** to building a fresh [`Graph`]: every
//! op writes its recycled buffer with exactly the arithmetic (same
//! operations, same order) as the allocating path, and in-place gradient
//! accumulation performs the same `existing += update` sequence the
//! allocate-then-accumulate sweep performed. The property suite
//! (`tests/tape_reuse.rs`, `tests/autodiff_properties.rs`) pins
//! reset-and-reuse against fresh graphs bit for bit, including across
//! batch-size changes. Together with the thread-count-invariant matmul
//! kernels (see [`crate::parallel`]) this keeps training runs reproducible:
//! same seed, same model — regardless of tape reuse or worker count.
//!
//! ## The op set
//!
//! Besides the standard neural-network ops, the tape implements the fused
//! operations the SelNet paper needs:
//!
//! * [`Graph::norml2`] — the paper's `Norml2` normalized-square map (§5.2),
//! * [`Graph::cumsum_cols`] — the prefix-sum (`M_psum`) operator,
//! * [`Graph::pwl_interp`] — evaluation of the continuous piece-wise linear
//!   estimator (Eq. 1) with gradients to both control-point vectors,
//! * [`Graph::block_linear`] — the per-control-point decoder of model M,
//! * [`Graph::lattice`] — multilinear lattice interpolation (used by the
//!   DLN baseline),
//! * [`Graph::huber`] — the robust Huber loss (δ = 1.345 by default).

use crate::fwd;
use crate::matrix::Matrix;

/// Handle to a node on the tape.
///
/// A `Var` is only valid until the next [`Graph::reset`]; using a stale
/// handle afterwards panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Identifier of a trainable parameter inside a
/// [`ParamStore`](crate::params::ParamStore).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Dense index of the parameter inside its store (ids are assigned in
    /// registration order), e.g. for merging gradients computed on
    /// independent tapes.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The recorded operation of a tape node. Plain indices only — per-node
/// auxiliary state (the PWL segment choice) lives on the [`Node`] so slot
/// reuse recycles its allocation too. `pub(crate)` so
/// [`InferencePlan::compile`](crate::InferencePlan::compile) can translate
/// a recorded tape into a grad-free instruction list.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// matrix (R x C) + row vector (1 x C) broadcast over rows
    AddRowVec(usize, usize),
    /// matrix (R x C) * column vector (R x 1) broadcast over columns
    MulColVec(usize, usize),
    Scale(usize, f32),
    AddScalar(usize, f32),
    Relu(usize),
    LeakyRelu(usize, f32),
    /// `elu(x) + 1`, strictly positive; used by UMNN's integrand.
    EluPlusOne(usize),
    Softplus(usize),
    Sigmoid(usize),
    Tanh(usize),
    Exp(usize),
    /// `ln(max(x, 0) + eps)`
    LnEps(usize, f32),
    Abs(usize),
    Square(usize),
    SoftmaxRows(usize),
    Sum(usize),
    Mean(usize),
    RowSum(usize),
    ConcatCols(usize, usize),
    SliceCols(usize, usize, usize),
    CumsumCols(usize),
    Norml2(usize, f32),
    Huber(usize, f32),
    PwlInterp {
        tau: usize,
        p: usize,
        t: usize,
    },
    BlockLinear {
        input: usize,
        weight: usize,
        bias: usize,
        blocks: usize,
    },
    Lattice {
        input: usize,
        params: usize,
    },
}

/// One tape slot. `value` and `grad` keep their allocations across
/// [`Graph::reset`] so later batches recycle them.
pub(crate) struct Node {
    pub(crate) value: Matrix,
    /// In-place gradient accumulator; meaningful only while `grad_seen`.
    grad: Matrix,
    /// Whether `grad` holds this backward sweep's accumulated gradient.
    grad_seen: bool,
    pub(crate) op: Op,
    pub(crate) param: Option<ParamId>,
    /// Per-row segment chosen by a `PwlInterp` forward pass (`-1` below
    /// range, `-2` above); replayed by the backward sweep. Kept on the node
    /// (not in [`Op`]) so the buffer is recycled across batches.
    seg: Vec<i64>,
}

/// A reusable autodiff tape. Build the computation with the op methods,
/// call [`Graph::backward`] on a scalar node, read gradients, then
/// [`Graph::reset`] and record the next batch into the same storage.
#[derive(Default)]
pub struct Graph {
    /// Slot arena. `nodes[..live]` is the current tape; `nodes[live..]`
    /// are spare slots retained by [`Graph::reset`] for recycling.
    nodes: Vec<Node>,
    /// Number of live nodes in the current tape.
    live: usize,
    /// Recycled temporaries for the backward sweep (gradient scratch and
    /// transpose packing); they grow to the largest shape once and are
    /// reused forever after.
    scratch: Vec<Matrix>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(64),
            live: 0,
            scratch: Vec::new(),
        }
    }

    /// Rewinds the tape to empty while **keeping every buffer**: node
    /// capacity, value/gradient storage and scratch temporaries all survive
    /// and are recycled by the next batch's ops. All existing [`Var`]s
    /// become stale.
    pub fn reset(&mut self) {
        self.live = 0;
    }

    /// Runs `f` on a freshly [`reset`](Graph::reset) **thread-local** tape
    /// whose arena persists for the life of the thread — the zero-setup way
    /// to get tape reuse on inference paths (`predict_many` and friends)
    /// that can't thread a `&mut Graph` through their signatures.
    ///
    /// The closure must not call `with_pooled` reentrantly (the tape is
    /// exclusively borrowed while `f` runs; nesting panics).
    pub fn with_pooled<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
        use std::cell::RefCell;
        thread_local! {
            static POOLED: RefCell<Graph> = RefCell::new(Graph::new());
        }
        POOLED.with(|tape| {
            let mut g = tape.borrow_mut();
            g.reset();
            f(&mut g)
        })
    }

    /// Allocates the next tape slot (recycling a spare one when available)
    /// with a `rows x cols` value buffer of unspecified contents. Every op
    /// must overwrite the value completely.
    fn alloc(&mut self, rows: usize, cols: usize, op: Op) -> usize {
        let idx = self.live;
        if idx < self.nodes.len() {
            let n = &mut self.nodes[idx];
            n.value.reset_shape(rows, cols);
            n.grad_seen = false;
            n.op = op;
            n.param = None;
        } else {
            let mut value = Matrix::default();
            value.reset_shape(rows, cols);
            self.nodes.push(Node {
                value,
                grad: Matrix::default(),
                grad_seen: false,
                op,
                param: None,
                seg: Vec::new(),
            });
        }
        self.live = idx + 1;
        idx
    }

    /// Splits the arena at a freshly allocated `idx`: the already-recorded
    /// input nodes and the output node, borrowable simultaneously.
    fn out_split(&mut self, idx: usize) -> (&[Node], &mut Node) {
        let (pre, rest) = self.nodes.split_at_mut(idx);
        (&*pre, &mut rest[0])
    }

    /// Finalizes an op: debug-checks the produced value and returns the
    /// handle.
    fn done(&self, idx: usize) -> Var {
        debug_assert!(
            self.nodes[idx].value.all_finite(),
            "non-finite value produced by {:?}",
            self.nodes[idx].op
        );
        Var(idx)
    }

    fn take_scratch(&mut self) -> Matrix {
        self.scratch.pop().unwrap_or_default()
    }

    fn put_scratch(&mut self, m: Matrix) {
        self.scratch.push(m);
    }

    /// Records a constant leaf (inputs, targets), **moving** `value` onto
    /// the tape. On hot paths prefer [`Graph::leaf_ref`] or
    /// [`Graph::leaf_with`], which recycle the slot's existing buffer
    /// instead of adopting a freshly allocated one.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        let idx = self.alloc(0, 0, Op::Leaf);
        self.nodes[idx].value = value;
        self.done(idx)
    }

    /// Records a constant leaf by **copying** `value` into recycled
    /// storage (no allocation once the slot has the capacity).
    pub fn leaf_ref(&mut self, value: &Matrix) -> Var {
        let idx = self.alloc(0, 0, Op::Leaf);
        self.nodes[idx].value.copy_from(value);
        self.done(idx)
    }

    /// Records a `rows x cols` constant leaf whose zero-initialized data is
    /// filled in place by `fill` — the allocation-free way to assemble
    /// batch matrices directly on the tape.
    pub fn leaf_with(&mut self, rows: usize, cols: usize, fill: impl FnOnce(&mut [f32])) -> Var {
        let idx = self.alloc(0, 0, Op::Leaf);
        self.nodes[idx].value.reset_zero(rows, cols);
        fill(self.nodes[idx].value.data_mut());
        self.done(idx)
    }

    /// Records a `rows x cols` constant leaf assembled row by row with
    /// `fill(row_index, row)`, parallelized over row chunks on up to
    /// `threads` workers (see [`crate::parallel::par_fill_rows`]) — the
    /// batched entry point used by inference engines to coalesce many
    /// queries into one tape pass without allocating a staging buffer.
    pub fn leaf_rows<F>(&mut self, rows: usize, cols: usize, threads: usize, fill: F) -> Var
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        self.leaf_with(rows, cols, |data| {
            crate::parallel::par_fill_rows(data, cols, threads, fill)
        })
    }

    /// Records a trainable-parameter leaf tagged with `id` so its gradient
    /// can be collected after [`Graph::backward`]. The value is copied into
    /// recycled storage — parameters are *rebound* to the tape each batch,
    /// not cloned into fresh allocations.
    pub fn param_leaf(&mut self, id: ParamId, value: &Matrix) -> Var {
        let v = self.leaf_ref(value);
        self.nodes[v.0].param = Some(id);
        v
    }

    /// The value held at `v`.
    ///
    /// # Panics
    /// Panics if `v` is stale (recorded before the last [`Graph::reset`]).
    pub fn value(&self, v: Var) -> &Matrix {
        assert!(v.0 < self.live, "stale Var used after Graph::reset()");
        &self.nodes[v.0].value
    }

    /// The gradient accumulated at `v` (cloned); zeros if backward never
    /// reached it.
    ///
    /// # Panics
    /// Panics if `v` is stale (recorded before the last [`Graph::reset`]).
    pub fn grad(&self, v: Var) -> Matrix {
        assert!(v.0 < self.live, "stale Var used after Graph::reset()");
        let n = &self.nodes[v.0];
        if n.grad_seen {
            n.grad.clone()
        } else {
            Matrix::zeros(n.value.rows(), n.value.cols())
        }
    }

    /// Number of nodes recorded since the last [`Graph::reset`].
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of node slots the arena retains (live + spare); stays flat
    /// across steady-state reuse.
    pub fn node_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// The live portion of the tape, for the plan compiler.
    pub(crate) fn live_nodes(&self) -> &[Node] {
        &self.nodes[..self.live]
    }

    /// Collects `(ParamId, gradient)` pairs for every parameter leaf,
    /// **cloning** each gradient. Hot paths should use
    /// [`Graph::param_grad_refs`] instead.
    pub fn param_grads(&self) -> Vec<(ParamId, Matrix)> {
        self.nodes[..self.live]
            .iter()
            .filter_map(|n| {
                n.param.map(|id| {
                    (
                        id,
                        if n.grad_seen {
                            n.grad.clone()
                        } else {
                            Matrix::zeros(n.value.rows(), n.value.cols())
                        },
                    )
                })
            })
            .collect()
    }

    /// Collects `(ParamId, &gradient)` pairs for every parameter leaf
    /// **without cloning** — feed these straight to
    /// [`Optimizer::step_refs`](crate::optim::Optimizer::step_refs).
    /// Parameters the backward sweep never reached get a zero gradient
    /// (materialized in their recycled buffer).
    pub fn param_grad_refs(&mut self) -> Vec<(ParamId, &Matrix)> {
        for n in &mut self.nodes[..self.live] {
            if n.param.is_some() && !n.grad_seen {
                n.grad.reset_zero(n.value.rows(), n.value.cols());
                n.grad_seen = true;
            }
        }
        self.nodes[..self.live]
            .iter()
            .filter_map(|n| n.param.map(|id| (id, &n.grad)))
            .collect()
    }

    // ---- binary ops ----

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let rows = self.nodes[a.0].value.rows();
        let cols = self.nodes[b.0].value.cols();
        let idx = self.alloc(rows, cols, Op::MatMul(a.0, b.0));
        let (pre, out) = self.out_split(idx);
        pre[a.0].value.matmul_into(&pre[b.0].value, &mut out.value);
        self.done(idx)
    }

    /// Shared body of the elementwise binary ops.
    fn binary_zip(&mut self, a: Var, b: Var, op: Op, f: impl Fn(f32, f32) -> f32) -> Var {
        let shape = self.nodes[a.0].value.shape();
        assert_eq!(
            shape,
            self.nodes[b.0].value.shape(),
            "elementwise op shape mismatch"
        );
        let idx = self.alloc(shape.0, shape.1, op);
        let (pre, out) = self.out_split(idx);
        fwd::binary_zip(&pre[a.0].value, &pre[b.0].value, &mut out.value, f);
        self.done(idx)
    }

    /// Elementwise sum of two same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary_zip(a, b, Op::Add(a.0, b.0), |x, y| x + y)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary_zip(a, b, Op::Sub(a.0, b.0), |x, y| x - y)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary_zip(a, b, Op::Mul(a.0, b.0), |x, y| x * y)
    }

    /// Adds a `1 x C` row vector to every row of an `R x C` matrix
    /// (the bias op).
    pub fn add_row_vec(&mut self, m: Var, row: Var) -> Var {
        {
            let (vm, vr) = (&self.nodes[m.0].value, &self.nodes[row.0].value);
            assert_eq!(vr.rows(), 1, "add_row_vec: rhs must be a row vector");
            assert_eq!(vm.cols(), vr.cols(), "add_row_vec: column mismatch");
        }
        let (rows, cols) = self.nodes[m.0].value.shape();
        let idx = self.alloc(rows, cols, Op::AddRowVec(m.0, row.0));
        let (pre, out) = self.out_split(idx);
        fwd::add_row_vec(&pre[m.0].value, &pre[row.0].value, &mut out.value);
        self.done(idx)
    }

    /// Multiplies every column of an `R x C` matrix by an `R x 1` column
    /// vector (per-row scaling, e.g. gate weights).
    pub fn mul_col_vec(&mut self, m: Var, col: Var) -> Var {
        {
            let (vm, vc) = (&self.nodes[m.0].value, &self.nodes[col.0].value);
            assert_eq!(vc.cols(), 1, "mul_col_vec: rhs must be a column vector");
            assert_eq!(vm.rows(), vc.rows(), "mul_col_vec: row mismatch");
        }
        let (rows, cols) = self.nodes[m.0].value.shape();
        let idx = self.alloc(rows, cols, Op::MulColVec(m.0, col.0));
        let (pre, out) = self.out_split(idx);
        fwd::mul_col_vec(&pre[m.0].value, &pre[col.0].value, &mut out.value);
        self.done(idx)
    }

    // ---- scalar ops ----

    /// Shared body of the elementwise unary ops.
    fn unary_map(&mut self, a: Var, op: Op, f: impl Fn(f32) -> f32) -> Var {
        let shape = self.nodes[a.0].value.shape();
        let idx = self.alloc(shape.0, shape.1, op);
        let (pre, out) = self.out_split(idx);
        fwd::unary_map(&pre[a.0].value, &mut out.value, f);
        self.done(idx)
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        self.unary_map(a, Op::Scale(a.0, alpha), |x| x * alpha)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        self.unary_map(a, Op::AddScalar(a.0, c), |x| x + c)
    }

    // ---- unary activations ----

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Relu(a.0), fwd::relu)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        self.unary_map(a, Op::LeakyRelu(a.0, alpha), |x| fwd::leaky_relu(x, alpha))
    }

    /// `elu(x) + 1 = exp(x)` for `x <= 0`, `x + 1` for `x > 0`; strictly
    /// positive, used for UMNN's positive integrand.
    pub fn elu_plus_one(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::EluPlusOne(a.0), fwd::elu_plus_one)
    }

    /// Numerically-stable softplus `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Softplus(a.0), fwd::softplus)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Sigmoid(a.0), fwd::sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Tanh(a.0), f32::tanh)
    }

    /// Elementwise exponential (inputs are clamped to 30 to stay finite).
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Exp(a.0), fwd::exp_clamped)
    }

    /// `ln(max(x, 0) + eps)` — the log-space mapping used by the paper's
    /// loss (the `eps` padding prevents `ln 0`).
    pub fn ln_eps(&mut self, a: Var, eps: f32) -> Var {
        self.unary_map(a, Op::LnEps(a.0, eps), |x| fwd::ln_eps(x, eps))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Abs(a.0), f32::abs)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        self.unary_map(a, Op::Square(a.0), |x| x * x)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let idx = self.alloc(rows, cols, Op::SoftmaxRows(a.0));
        let (pre, out) = self.out_split(idx);
        fwd::softmax_rows(&pre[a.0].value, &mut out.value);
        self.done(idx)
    }

    // ---- reductions ----

    /// Sum of all elements as a `1 x 1` node.
    pub fn sum(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum() as f32;
        let idx = self.alloc(1, 1, Op::Sum(a.0));
        self.nodes[idx].value.data_mut()[0] = s;
        self.done(idx)
    }

    /// Mean of all elements as a `1 x 1` node.
    pub fn mean(&mut self, a: Var) -> Var {
        let m = self.nodes[a.0].value.mean() as f32;
        let idx = self.alloc(1, 1, Op::Mean(a.0));
        self.nodes[idx].value.data_mut()[0] = m;
        self.done(idx)
    }

    /// Per-row sum as an `R x 1` node.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let rows = self.nodes[a.0].value.rows();
        let idx = self.alloc(rows, 1, Op::RowSum(a.0));
        let (pre, out) = self.out_split(idx);
        fwd::row_sum(&pre[a.0].value, &mut out.value);
        self.done(idx)
    }

    // ---- structural ops ----

    /// Concatenates two matrices with the same row count along columns.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (rows, ca) = self.nodes[a.0].value.shape();
        let (rb, cb) = self.nodes[b.0].value.shape();
        assert_eq!(rows, rb, "concat_cols row mismatch");
        let idx = self.alloc(rows, ca + cb, Op::ConcatCols(a.0, b.0));
        let (pre, out) = self.out_split(idx);
        fwd::concat_cols(&pre[a.0].value, &pre[b.0].value, &mut out.value);
        self.done(idx)
    }

    /// Extracts columns `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert!(start <= end && end <= cols, "slice_cols out of range");
        let idx = self.alloc(rows, end - start, Op::SliceCols(a.0, start, end));
        let (pre, out) = self.out_split(idx);
        fwd::slice_cols(&pre[a.0].value, start, end, &mut out.value);
        self.done(idx)
    }

    /// Per-row prefix sum: `out[i][j] = sum_{k <= j} in[i][k]`.
    ///
    /// This is the `M_psum` operator from the paper's network architecture
    /// (§5.2), which converts learned increments into non-decreasing control
    /// point sequences.
    pub fn cumsum_cols(&mut self, a: Var) -> Var {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let idx = self.alloc(rows, cols, Op::CumsumCols(a.0));
        let (pre, out) = self.out_split(idx);
        fwd::cumsum_cols(&pre[a.0].value, &mut out.value);
        self.done(idx)
    }

    /// The paper's `Norml2` normalized-square map (§5.2):
    /// `out_i = (x_i^2 + eps/d) / (x·x + eps)` per row. Every output row is
    /// positive and sums to exactly 1, which turns the following cumulative
    /// sum into a partition of `[0, 1]`.
    pub fn norml2(&mut self, a: Var, eps: f32) -> Var {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let idx = self.alloc(rows, cols, Op::Norml2(a.0, eps));
        let (pre, out) = self.out_split(idx);
        fwd::norml2(&pre[a.0].value, eps, &mut out.value);
        self.done(idx)
    }

    /// Elementwise Huber with parameter `delta`:
    /// `r^2/2` for `|r| <= delta`, `delta(|r| - delta/2)` otherwise.
    pub fn huber(&mut self, a: Var, delta: f32) -> Var {
        self.unary_map(a, Op::Huber(a.0, delta), |r| fwd::huber(r, delta))
    }

    /// Evaluates the continuous piece-wise linear function of Eq. (1).
    ///
    /// * `tau`: control-point abscissae, `R x m` (or `1 x m`, broadcast),
    ///   assumed non-decreasing along each row;
    /// * `p`: control-point ordinates, same shape rules;
    /// * `t`: evaluation points, `R x 1`.
    ///
    /// `t` below `tau[0]` clamps to `p[0]`; `t` at or above `tau[m-1]`
    /// clamps to `p[m-1]`. Gradients flow to `tau`, `p`, and `t`.
    pub fn pwl_interp(&mut self, tau: Var, p: Var, t: Var) -> Var {
        let rows = {
            let (vt, vtau, vp) = (
                &self.nodes[t.0].value,
                &self.nodes[tau.0].value,
                &self.nodes[p.0].value,
            );
            let rows = vt.rows();
            assert_eq!(vt.cols(), 1, "pwl_interp: t must be a column vector");
            assert_eq!(vtau.cols(), vp.cols(), "pwl_interp: tau/p length mismatch");
            assert!(
                vtau.cols() >= 2,
                "pwl_interp: need at least two control points"
            );
            for (name, m) in [("tau", vtau), ("p", vp)] {
                assert!(
                    m.rows() == rows || m.rows() == 1,
                    "pwl_interp: {name} must have {rows} rows or broadcast from 1"
                );
            }
            rows
        };
        let idx = self.alloc(
            rows,
            1,
            Op::PwlInterp {
                tau: tau.0,
                p: p.0,
                t: t.0,
            },
        );
        let (pre, out) = self.out_split(idx);
        fwd::pwl_interp(
            &pre[tau.0].value,
            &pre[p.0].value,
            &pre[t.0].value,
            &mut out.value,
            Some(&mut out.seg),
        );
        self.done(idx)
    }

    /// Per-block linear map — the decoder of the paper's model M (§5.2).
    ///
    /// `input` is `R x (blocks*h)`, interpreted as `blocks` contiguous
    /// chunks of width `h`; `weight` is `blocks x h`; `bias` is
    /// `1 x blocks`. Output `R x blocks` with
    /// `out[r][i] = input[r, i*h..][..h] · weight[i] + bias[i]`.
    pub fn block_linear(&mut self, input: Var, weight: Var, bias: Var) -> Var {
        let (rows, blocks) = {
            let (vi, vw, vb) = (
                &self.nodes[input.0].value,
                &self.nodes[weight.0].value,
                &self.nodes[bias.0].value,
            );
            let blocks = vw.rows();
            let h = vw.cols();
            assert_eq!(vi.cols(), blocks * h, "block_linear: input width mismatch");
            assert_eq!(vb.shape(), (1, blocks), "block_linear: bias shape mismatch");
            (vi.rows(), blocks)
        };
        let idx = self.alloc(
            rows,
            blocks,
            Op::BlockLinear {
                input: input.0,
                weight: weight.0,
                bias: bias.0,
                blocks,
            },
        );
        let (pre, out) = self.out_split(idx);
        fwd::block_linear(
            &pre[input.0].value,
            &pre[weight.0].value,
            &pre[bias.0].value,
            &mut out.value,
        );
        self.done(idx)
    }

    /// Multilinear lattice interpolation over the unit hypercube.
    ///
    /// `input` is `R x m` with entries clamped to `[0, 1]`; `params` is
    /// `1 x 2^m` holding the lattice vertex values indexed by the bitmask of
    /// upper coordinates (bit `j` set = upper vertex along dim `j`).
    /// Used by the DLN baseline's lattice layers.
    pub fn lattice(&mut self, input: Var, params: Var) -> Var {
        let (rows, _m) = {
            let (vi, vp) = (&self.nodes[input.0].value, &self.nodes[params.0].value);
            let m = vi.cols();
            assert!(m <= 16, "lattice: dimension too large (2^m params)");
            assert_eq!(
                vp.shape(),
                (1, 1usize << m),
                "lattice: params must be 1 x 2^m"
            );
            (vi.rows(), m)
        };
        let idx = self.alloc(
            rows,
            1,
            Op::Lattice {
                input: input.0,
                params: params.0,
            },
        );
        let (pre, out) = self.out_split(idx);
        fwd::lattice(&pre[input.0].value, &pre[params.0].value, &mut out.value);
        self.done(idx)
    }

    // ---- backward ----

    /// Runs the reverse sweep from `loss`, which must be `1 x 1`. Gradients
    /// accumulate **in place** into every reachable node's recycled buffer
    /// and can be read with [`Graph::grad`] / [`Graph::param_grads`] /
    /// [`Graph::param_grad_refs`].
    pub fn backward(&mut self, loss: Var) {
        assert!(loss.0 < self.live, "stale Var used after Graph::reset()");
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be scalar"
        );
        for n in &mut self.nodes[..self.live] {
            n.grad_seen = false;
        }
        {
            let n = &mut self.nodes[loss.0];
            n.grad.reset_shape(1, 1);
            n.grad.data_mut()[0] = 1.0;
            n.grad_seen = true;
        }
        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].grad_seen {
                continue;
            }
            self.apply_backward(idx);
        }
    }

    fn apply_backward(&mut self, idx: usize) {
        let op = self.nodes[idx].op;
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let mut pack = self.take_scratch();
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                {
                    let (grad, seen, vb) = grad_and_value(pre, a, b);
                    acc_with(grad, seen, &mut tmp, |out| {
                        gout.matmul_a_bt_into(vb, out, &mut pack)
                    });
                }
                {
                    let (grad, seen, va) = grad_and_value(pre, b, a);
                    acc_with(grad, seen, &mut tmp, |out| {
                        va.matmul_at_b_into(gout, out, &mut pack)
                    });
                }
                self.put_scratch(tmp);
                self.put_scratch(pack);
            }
            Op::Add(a, b) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                acc_matrix(pre, a, gout);
                acc_matrix(pre, b, gout);
            }
            Op::Sub(a, b) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                acc_matrix(pre, a, gout);
                let (grad, seen) = grad_mut(pre, b);
                acc_map(grad, seen, gout, |g| -g);
            }
            Op::Mul(a, b) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                {
                    let (grad, seen, vb) = grad_and_value(pre, a, b);
                    acc_zip(grad, seen, gout, vb, |g, y| g * y);
                }
                {
                    let (grad, seen, va) = grad_and_value(pre, b, a);
                    acc_zip(grad, seen, gout, va, |g, x| g * x);
                }
            }
            Op::AddRowVec(m, row) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                acc_matrix(pre, m, gout);
                let (grad, seen) = grad_mut(pre, row);
                acc_with(grad, seen, &mut tmp, |out| {
                    // column sums of gout, accumulated row by row
                    out.reset_zero(1, gout.cols());
                    for i in 0..gout.rows() {
                        for (o, &g) in out.row_mut(0).iter_mut().zip(gout.row(i)) {
                            *o += g;
                        }
                    }
                });
                self.put_scratch(tmp);
            }
            Op::MulColVec(m, col) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                {
                    let (grad, seen, vcol) = grad_and_value(pre, m, col);
                    acc_with(grad, seen, &mut tmp, |out| {
                        out.reset_shape(gout.rows(), gout.cols());
                        for i in 0..gout.rows() {
                            let s = vcol.get(i, 0);
                            for (o, &g) in out.row_mut(i).iter_mut().zip(gout.row(i)) {
                                *o = g * s;
                            }
                        }
                    });
                }
                {
                    let (grad, seen, vm) = grad_and_value(pre, col, m);
                    acc_with(grad, seen, &mut tmp, |out| {
                        out.reset_shape(gout.rows(), 1);
                        for i in 0..gout.rows() {
                            let mut acc = 0.0f32;
                            for (g, x) in gout.row(i).iter().zip(vm.row(i)) {
                                acc += g * x;
                            }
                            out.set(i, 0, acc);
                        }
                    });
                }
                self.put_scratch(tmp);
            }
            Op::Scale(a, alpha) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let (grad, seen) = grad_mut(pre, a);
                acc_map(grad, seen, &rest[0].grad, |g| g * alpha);
            }
            Op::AddScalar(a, _) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                acc_matrix(pre, a, &rest[0].grad);
            }
            Op::Relu(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| if x > 0.0 { g } else { 0.0 },
                );
            }
            Op::LeakyRelu(a, alpha) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| if x > 0.0 { g } else { alpha * g },
                );
            }
            Op::EluPlusOne(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| if x > 0.0 { g } else { g * x.exp() },
                );
            }
            Op::Softplus(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| g / (1.0 + (-x).exp()),
                );
            }
            Op::Sigmoid(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let node = &rest[0];
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &node.grad,
                    &node.value,
                    |g, y| g * y * (1.0 - y),
                );
            }
            Op::Tanh(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let node = &rest[0];
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &node.grad,
                    &node.value,
                    |g, y| g * (1.0 - y * y),
                );
            }
            Op::Exp(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let node = &rest[0];
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &node.grad,
                    &node.value,
                    |g, y| g * y,
                );
            }
            Op::LnEps(a, eps) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| if x > 0.0 { g / (x + eps) } else { 0.0 },
                );
            }
            Op::Abs(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| g * x.signum(),
                );
            }
            Op::Square(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, x| 2.0 * g * x,
                );
            }
            Op::Huber(a, delta) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                acc_zip(
                    &mut n.grad,
                    &mut n.grad_seen,
                    &rest[0].grad,
                    &n.value,
                    |g, r| {
                        if r.abs() <= delta {
                            g * r
                        } else {
                            g * delta * r.signum()
                        }
                    },
                );
            }
            Op::SoftmaxRows(a) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let node = &rest[0];
                let y = &node.value;
                let gout = &node.grad;
                let (grad, seen) = grad_mut(pre, a);
                acc_with(grad, seen, &mut tmp, |out| {
                    out.reset_shape(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let yr = y.row(i);
                        let gr = gout.row(i);
                        let dot: f32 = yr.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                        for (j, o) in out.row_mut(i).iter_mut().enumerate() {
                            *o = yr[j] * (gr[j] - dot);
                        }
                    }
                });
                self.put_scratch(tmp);
            }
            Op::Sum(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let s = rest[0].grad.get(0, 0);
                let n = &mut pre[a];
                let shape = n.value.shape();
                acc_fill(&mut n.grad, &mut n.grad_seen, shape, s);
            }
            Op::Mean(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let n = &mut pre[a];
                let shape = n.value.shape();
                let count = (shape.0 * shape.1).max(1) as f32;
                let s = rest[0].grad.get(0, 0) / count;
                acc_fill(&mut n.grad, &mut n.grad_seen, shape, s);
            }
            Op::RowSum(a) => {
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                let n = &mut pre[a];
                let shape = n.value.shape();
                if !n.grad_seen {
                    n.grad.reset_shape(shape.0, shape.1);
                }
                for i in 0..shape.0 {
                    let s = gout.get(i, 0);
                    if n.grad_seen {
                        for gd in n.grad.row_mut(i) {
                            *gd += s;
                        }
                    } else {
                        for gd in n.grad.row_mut(i) {
                            *gd = s;
                        }
                    }
                }
                n.grad_seen = true;
            }
            Op::ConcatCols(a, b) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                let ca = pre[a].value.cols();
                let cb = pre[b].value.cols();
                let rows = gout.rows();
                {
                    let (grad, seen) = grad_mut(pre, a);
                    acc_with(grad, seen, &mut tmp, |out| {
                        out.reset_shape(rows, ca);
                        for i in 0..rows {
                            out.row_mut(i).copy_from_slice(&gout.row(i)[..ca]);
                        }
                    });
                }
                {
                    let (grad, seen) = grad_mut(pre, b);
                    acc_with(grad, seen, &mut tmp, |out| {
                        out.reset_shape(rows, cb);
                        for i in 0..rows {
                            out.row_mut(i).copy_from_slice(&gout.row(i)[ca..]);
                        }
                    });
                }
                self.put_scratch(tmp);
            }
            Op::SliceCols(a, start, _end) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                let shape = pre[a].value.shape();
                let (grad, seen) = grad_mut(pre, a);
                acc_with(grad, seen, &mut tmp, |out| {
                    out.reset_zero(shape.0, shape.1);
                    for i in 0..gout.rows() {
                        let gr = gout.row(i);
                        out.row_mut(i)[start..start + gr.len()].copy_from_slice(gr);
                    }
                });
                self.put_scratch(tmp);
            }
            Op::CumsumCols(a) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                let (grad, seen) = grad_mut(pre, a);
                acc_with(grad, seen, &mut tmp, |out| {
                    // d/dx_k sum over j >= k of gout_j => reverse cumulative sum
                    out.reset_shape(gout.rows(), gout.cols());
                    for i in 0..gout.rows() {
                        let mut acc = 0.0f32;
                        for (o, &g) in out
                            .row_mut(i)
                            .iter_mut()
                            .rev()
                            .zip(gout.row(i).iter().rev())
                        {
                            acc += g;
                            *o = acc;
                        }
                    }
                });
                self.put_scratch(tmp);
            }
            Op::Norml2(a, eps) => {
                let mut tmp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                let n = &mut pre[a];
                let (grad, seen, x) = (&mut n.grad, &mut n.grad_seen, &n.value);
                let d = x.cols() as f32;
                acc_with(grad, seen, &mut tmp, |out| {
                    out.reset_shape(x.rows(), x.cols());
                    for i in 0..x.rows() {
                        let xr = x.row(i);
                        let gr = gout.row(i);
                        let dot: f32 = xr.iter().map(|&v| v * v).sum();
                        let denom = dot + eps;
                        let denom2 = denom * denom;
                        // out_j = (x_j^2 + eps/d) / denom
                        // d out_j / d x_k =
                        //   [2 x_j delta_jk * denom - (x_j^2+eps/d) * 2 x_k] / denom^2
                        let weighted: f32 = xr
                            .iter()
                            .zip(gr)
                            .map(|(&xj, &gj)| gj * (xj * xj + eps / d))
                            .sum();
                        for (k, o) in out.row_mut(i).iter_mut().enumerate() {
                            *o = 2.0 * xr[k] * (gr[k] * denom - weighted) / denom2;
                        }
                    }
                });
                self.put_scratch(tmp);
            }
            Op::PwlInterp { tau, p, t } => {
                let mut gtau = self.take_scratch();
                let mut gp = self.take_scratch();
                let mut gt = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let node = &rest[0];
                let gout = &node.grad;
                let segments = &node.seg;
                {
                    let (vtau, vp, vt) = (&pre[tau].value, &pre[p].value, &pre[t].value);
                    let m = vtau.cols();
                    gtau.reset_zero(vtau.rows(), vtau.cols());
                    gp.reset_zero(vp.rows(), vp.cols());
                    gt.reset_zero(vt.rows(), 1);
                    // index-driven on purpose: parallel row-broadcast matrices
                    #[allow(clippy::needless_range_loop)]
                    for r in 0..vt.rows() {
                        let g = gout.get(r, 0);
                        if g == 0.0 {
                            continue;
                        }
                        let rt = if vtau.rows() == 1 { 0 } else { r };
                        let rp = if vp.rows() == 1 { 0 } else { r };
                        match segments[r] {
                            -1 => {
                                gp.set(rp, 0, gp.get(rp, 0) + g);
                            }
                            -2 => {
                                gp.set(rp, m - 1, gp.get(rp, m - 1) + g);
                            }
                            lo => {
                                let lo = lo as usize;
                                let a = vtau.get(rt, lo);
                                let b = vtau.get(rt, lo + 1);
                                let pa = vp.get(rp, lo);
                                let pb = vp.get(rp, lo + 1);
                                let tr = vt.get(r, 0);
                                let denom = (b - a).max(1e-12);
                                let alpha = (tr - a) / denom;
                                let dp = pb - pa;
                                gp.set(rp, lo, gp.get(rp, lo) + g * (1.0 - alpha));
                                gp.set(rp, lo + 1, gp.get(rp, lo + 1) + g * alpha);
                                let d2 = denom * denom;
                                gtau.set(rt, lo, gtau.get(rt, lo) + g * dp * (tr - b) / d2);
                                gtau.set(rt, lo + 1, gtau.get(rt, lo + 1) + g * dp * (a - tr) / d2);
                                gt.set(r, 0, gt.get(r, 0) + g * dp / denom);
                            }
                        }
                    }
                }
                acc_matrix(pre, tau, &gtau);
                acc_matrix(pre, p, &gp);
                acc_matrix(pre, t, &gt);
                self.put_scratch(gt);
                self.put_scratch(gp);
                self.put_scratch(gtau);
            }
            Op::BlockLinear {
                input,
                weight,
                bias,
                blocks,
            } => {
                let mut gi = self.take_scratch();
                let mut gw = self.take_scratch();
                let mut gb = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                {
                    let (vi, vw) = (&pre[input].value, &pre[weight].value);
                    let h = vw.cols();
                    gi.reset_zero(vi.rows(), vi.cols());
                    gw.reset_zero(blocks, h);
                    gb.reset_zero(1, blocks);
                    for r in 0..vi.rows() {
                        let xrow = vi.row(r);
                        let grow = gout.row(r);
                        let girow = gi.row_mut(r);
                        for (i, &g) in grow.iter().enumerate() {
                            if g == 0.0 {
                                continue;
                            }
                            gb.set(0, i, gb.get(0, i) + g);
                            let w = vw.row(i);
                            let x = &xrow[i * h..(i + 1) * h];
                            let gx = &mut girow[i * h..(i + 1) * h];
                            for k in 0..h {
                                gx[k] += g * w[k];
                            }
                            let gwrow = gw.row_mut(i);
                            for k in 0..h {
                                gwrow[k] += g * x[k];
                            }
                        }
                    }
                }
                acc_matrix(pre, input, &gi);
                acc_matrix(pre, weight, &gw);
                acc_matrix(pre, bias, &gb);
                self.put_scratch(gb);
                self.put_scratch(gw);
                self.put_scratch(gi);
            }
            Op::Lattice { input, params } => {
                let mut gi = self.take_scratch();
                let mut gp = self.take_scratch();
                let (pre, rest) = self.nodes.split_at_mut(idx);
                let gout = &rest[0].grad;
                {
                    let (vi, vp) = (&pre[input].value, &pre[params].value);
                    let m = vi.cols();
                    gi.reset_zero(vi.rows(), m);
                    gp.reset_zero(1, 1 << m);
                    for r in 0..vi.rows() {
                        let g = gout.get(r, 0);
                        if g == 0.0 {
                            continue;
                        }
                        let x = vi.row(r);
                        for mask in 0..(1usize << m) {
                            // weight and its partials
                            let mut w = 1.0f32;
                            for (j, &xj) in x.iter().enumerate() {
                                let c = xj.clamp(0.0, 1.0);
                                w *= if mask >> j & 1 == 1 { c } else { 1.0 - c };
                            }
                            gp.set(0, mask, gp.get(0, mask) + g * w);
                            let pv = vp.get(0, mask);
                            for j in 0..m {
                                let xj = x[j];
                                if !(0.0..=1.0).contains(&xj) {
                                    continue; // clamped: zero gradient to input
                                }
                                let mut dw = 1.0f32;
                                for (k, &xk) in x.iter().enumerate() {
                                    let c = xk.clamp(0.0, 1.0);
                                    if k == j {
                                        dw *= if mask >> k & 1 == 1 { 1.0 } else { -1.0 };
                                    } else {
                                        dw *= if mask >> k & 1 == 1 { c } else { 1.0 - c };
                                    }
                                }
                                gi.set(r, j, gi.get(r, j) + g * pv * dw);
                            }
                        }
                    }
                }
                acc_matrix(pre, input, &gi);
                acc_matrix(pre, params, &gp);
                self.put_scratch(gp);
                self.put_scratch(gi);
            }
        }
    }
}

// ---- in-place gradient accumulation helpers ----
//
// All of these preserve the exact arithmetic of the old allocate-then-
// accumulate sweep: the first contribution to a node *defines* its gradient
// (copy), every later one performs `existing += update` elementwise, in the
// same visit order.

/// Mutable access to a node's gradient accumulator.
fn grad_mut(pre: &mut [Node], t: usize) -> (&mut Matrix, &mut bool) {
    let n = &mut pre[t];
    (&mut n.grad, &mut n.grad_seen)
}

/// Gradient accumulator of node `t` together with the *value* of node `s`,
/// handling `t == s` (gradient and value of one node are disjoint fields).
fn grad_and_value(pre: &mut [Node], t: usize, s: usize) -> (&mut Matrix, &mut bool, &Matrix) {
    use std::cmp::Ordering;
    match t.cmp(&s) {
        Ordering::Equal => {
            let n = &mut pre[t];
            (&mut n.grad, &mut n.grad_seen, &n.value)
        }
        Ordering::Less => {
            let (lo, hi) = pre.split_at_mut(s);
            let n = &mut lo[t];
            (&mut n.grad, &mut n.grad_seen, &hi[0].value)
        }
        Ordering::Greater => {
            let (lo, hi) = pre.split_at_mut(t);
            let n = &mut hi[0];
            (&mut n.grad, &mut n.grad_seen, &lo[s].value)
        }
    }
}

/// Accumulates a fully-formed gradient matrix into node `t`.
fn acc_matrix(pre: &mut [Node], t: usize, src: &Matrix) {
    let n = &mut pre[t];
    if n.grad_seen {
        n.grad.add_assign(src);
    } else {
        n.grad.copy_from(src);
        n.grad_seen = true;
    }
}

/// Accumulates a constant `s` broadcast over a `shape`-d gradient buffer
/// (the scalar-reduction backward of `sum` / `mean`).
fn acc_fill(grad: &mut Matrix, seen: &mut bool, shape: (usize, usize), s: f32) {
    if *seen {
        for gd in grad.data_mut() {
            *gd += s;
        }
    } else {
        grad.reset_shape(shape.0, shape.1);
        grad.fill(s);
        *seen = true;
    }
}

/// Accumulates `f(gout)` elementwise into a gradient buffer.
fn acc_map(grad: &mut Matrix, seen: &mut bool, gout: &Matrix, f: impl Fn(f32) -> f32) {
    if *seen {
        for (gd, &go) in grad.data_mut().iter_mut().zip(gout.data()) {
            *gd += f(go);
        }
    } else {
        grad.reset_shape(gout.rows(), gout.cols());
        for (gd, &go) in grad.data_mut().iter_mut().zip(gout.data()) {
            *gd = f(go);
        }
        *seen = true;
    }
}

/// Accumulates `f(gout, aux)` elementwise into a gradient buffer, where
/// `aux` is a same-shape companion matrix (an input or output value).
fn acc_zip(
    grad: &mut Matrix,
    seen: &mut bool,
    gout: &Matrix,
    aux: &Matrix,
    f: impl Fn(f32, f32) -> f32,
) {
    debug_assert_eq!(gout.shape(), aux.shape());
    if *seen {
        for ((gd, &go), &x) in grad.data_mut().iter_mut().zip(gout.data()).zip(aux.data()) {
            *gd += f(go, x);
        }
    } else {
        grad.reset_shape(gout.rows(), gout.cols());
        for ((gd, &go), &x) in grad.data_mut().iter_mut().zip(gout.data()).zip(aux.data()) {
            *gd = f(go, x);
        }
        *seen = true;
    }
}

/// Runs `compute` into the gradient buffer directly on the first
/// contribution, or into `tmp` followed by an in-place add on later ones.
/// `compute` must reshape and fully define its output.
fn acc_with(
    grad: &mut Matrix,
    seen: &mut bool,
    tmp: &mut Matrix,
    compute: impl FnOnce(&mut Matrix),
) {
    if *seen {
        compute(tmp);
        grad.add_assign(tmp);
    } else {
        compute(grad);
        *seen = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_simple_chain() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 2, vec![1.0, -2.0]));
        let r = g.relu(x);
        assert_eq!(g.value(r).data(), &[1.0, 0.0]);
        let s = g.sum(r);
        assert_eq!(g.value(s).get(0, 0), 1.0);
    }

    #[test]
    fn backward_matmul_chain() {
        // loss = sum(A * B); dL/dA = ones * B^T, dL/dB = A^T * ones
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a).data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.grad(b).data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn norml2_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(
            2,
            4,
            vec![0.5, -1.0, 2.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        ));
        let y = g.norml2(x, 1e-6);
        for i in 0..2 {
            let s: f32 = g.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            assert!(g.value(y).row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn cumsum_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let c = g.cumsum_cols(x);
        assert_eq!(g.value(c).data(), &[1.0, 3.0, 6.0]);
        let s = g.sum(c);
        g.backward(s);
        // d/dx_k = number of outputs depending on x_k = 3 - k
        assert_eq!(g.grad(x).data(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn pwl_interp_basic() {
        let mut g = Graph::new();
        let tau = g.leaf(Matrix::row_vector(&[0.0, 1.0, 2.0]));
        let p = g.leaf(Matrix::row_vector(&[0.0, 10.0, 30.0]));
        let t = g.leaf(Matrix::col_vector(&[0.5, 1.5, -1.0, 5.0]));
        let y = g.pwl_interp(tau, p, t);
        let v = g.value(y);
        assert_eq!(v.data(), &[5.0, 20.0, 0.0, 30.0]);
    }

    #[test]
    fn pwl_interp_monotone_when_p_nondecreasing() {
        let mut g = Graph::new();
        let tau = g.leaf(Matrix::row_vector(&[0.0, 0.3, 0.9, 2.0]));
        let p = g.leaf(Matrix::row_vector(&[0.0, 1.0, 1.0, 7.0]));
        let ts: Vec<f32> = (0..50).map(|i| i as f32 * 0.05).collect();
        let t = g.leaf(Matrix::col_vector(&ts));
        let y = g.pwl_interp(tau, p, t);
        let v = g.value(y);
        for i in 1..ts.len() {
            assert!(v.get(i, 0) >= v.get(i - 1, 0) - 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = g.softmax_rows(x);
        for i in 0..2 {
            let s: f32 = g.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn block_linear_matches_manual() {
        let mut g = Graph::new();
        // 2 blocks of width 2
        let x = g.leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let w = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]));
        let b = g.leaf(Matrix::row_vector(&[0.1, -0.2]));
        let y = g.block_linear(x, w, b);
        let v = g.value(y);
        assert!((v.get(0, 0) - (1.0 + 1.0 + 0.1)).abs() < 1e-6);
        assert!((v.get(0, 1) - (-3.0 + 8.0 - 0.2)).abs() < 1e-6);
    }

    #[test]
    fn lattice_interpolates_corners_and_centers() {
        let mut g = Graph::new();
        // 2-d lattice with vertex values 0,1,2,3 for masks 00,01,10,11
        let p = g.leaf(Matrix::row_vector(&[0.0, 1.0, 2.0, 3.0]));
        let x = g.leaf(Matrix::from_vec(3, 2, vec![0.0, 0.0, 1.0, 1.0, 0.5, 0.5]));
        let y = g.lattice(x, p);
        let v = g.value(y);
        assert!((v.get(0, 0) - 0.0).abs() < 1e-6);
        assert!((v.get(1, 0) - 3.0).abs() < 1e-6);
        assert!((v.get(2, 0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn huber_quadratic_and_linear_regimes() {
        let mut g = Graph::new();
        let r = g.leaf(Matrix::row_vector(&[0.5, 3.0]));
        let h = g.huber(r, 1.0);
        let v = g.value(h);
        assert!((v.get(0, 0) - 0.125).abs() < 1e-6);
        assert!((v.get(0, 1) - (3.0 - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn reset_recycles_slots_without_growing_the_arena() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = g.square(x);
        let loss = g.sum(y);
        g.backward(loss);
        let cap = g.node_capacity();
        for _ in 0..5 {
            g.reset();
            let x = g.leaf_with(2, 2, |d| d.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]));
            let y = g.square(x);
            let loss = g.sum(y);
            g.backward(loss);
            assert_eq!(g.grad(x).data(), &[2.0, 4.0, 6.0, 8.0]);
            assert_eq!(g.node_capacity(), cap, "arena must not grow on reuse");
        }
    }

    #[test]
    #[should_panic(expected = "stale Var")]
    fn stale_var_panics_after_reset() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(1, 1));
        g.reset();
        let _ = g.value(x);
    }
}
