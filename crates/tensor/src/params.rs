//! Trainable-parameter storage with binary checkpointing.
//!
//! A [`ParamStore`] owns the master copy of every trainable matrix. Each
//! training step injects parameters into a (freshly [`reset`]) [`Graph`]
//! via [`ParamStore::inject`] — a copy into the tape's recycled leaf
//! buffer, not a clone — runs forward + backward, collects borrowed
//! gradients with
//! [`Graph::param_grad_refs`](crate::graph::Graph::param_grad_refs), and
//! hands them to an optimizer.
//!
//! [`reset`]: crate::graph::Graph::reset
//!
//! Checkpoints use a small self-contained binary format (magic + version +
//! named f32 matrices, little-endian), so no serialization dependency is
//! needed.

use crate::graph::{Graph, ParamId, Var};
use crate::matrix::Matrix;
use std::io::{self, Read, Write};

// "W" for weights. (`SELNETP1` is the whole-model *partitioned snapshot*
// magic owned by `selnet-core`'s persistence layer, which embeds one of
// these parameter streams.)
const MAGIC: &[u8; 8] = b"SELNETW1";

/// Caps on length fields read from untrusted checkpoint bytes, so a
/// corrupted stream yields [`io::ErrorKind::InvalidData`] instead of an
/// absurd allocation.
const MAX_PARAMS: u64 = 1 << 24;
const MAX_NAME_LEN: u32 = 1 << 16;
const MAX_MATRIX_SCALARS: u64 = 1 << 31;

/// Owns named trainable parameters.
#[derive(Default, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
    /// Mutation stamp; see [`ParamStore::version`].
    version: u64,
}

/// Source of globally-unique version stamps. A process-global counter (not
/// a per-store one) means two stores can never carry the same version with
/// different contents — e.g. a store cloned at version `v`, assigned back
/// over a further-trained original, and then trained to the same *count*
/// of mutations still ends at a fresh stamp.
static NEXT_VERSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A stamp that changes on every mutation of the store (parameter
    /// registration, [`ParamStore::value_mut`] access, or a bulk
    /// [`ParamStore::copy_from`]). Cloning preserves the stamp — a clone
    /// holds identical values, so anything derived from the original (a
    /// compiled [`InferencePlan`](crate::InferencePlan), say) is equally
    /// valid for it. Caches keyed on this value never serve stale
    /// derivations: stamps are drawn from a process-global counter, so no
    /// two distinct mutation states ever share one.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        self.version = fresh_version();
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Parameter value by id.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable parameter value by id (used by optimizers and projections).
    /// Bumps [`ParamStore::version`]: handing out mutable access counts as
    /// a mutation.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.version = fresh_version();
        &mut self.values[id.0]
    }

    /// Parameter name by id.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Records this parameter's current value on the tape. The value is
    /// copied into the tape's recycled leaf buffer — no allocation once the
    /// (reused) tape has warmed up.
    pub fn inject(&self, g: &mut Graph, id: ParamId) -> Var {
        g.param_leaf(id, &self.values[id.0])
    }

    /// Writes all parameters to `w` in the checkpoint format.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.values.len() as u64).to_le_bytes())?;
        for (name, m) in self.names.iter().zip(&self.values) {
            let bytes = name.as_bytes();
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(bytes)?;
            w.write_all(&(m.rows() as u64).to_le_bytes())?;
            w.write_all(&(m.cols() as u64).to_le_bytes())?;
            for &x in m.data() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reads a checkpoint previously written by [`ParamStore::save`].
    pub fn load(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad checkpoint magic",
            ));
        }
        let count = read_u64(r)?;
        if count > MAX_PARAMS {
            return Err(invalid_data(format!("implausible parameter count {count}")));
        }
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name_len = read_u32(r)?;
            if name_len > MAX_NAME_LEN {
                return Err(invalid_data(format!("implausible name length {name_len}")));
            }
            let mut name = vec![0u8; name_len as usize];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| invalid_data("bad utf8 name"))?;
            let rows = read_u64(r)?;
            let cols = read_u64(r)?;
            let scalars = rows
                .checked_mul(cols)
                .filter(|&n| n <= MAX_MATRIX_SCALARS)
                .ok_or_else(|| invalid_data(format!("implausible matrix shape {rows}x{cols}")))?;
            let mut data = vec![0.0f32; scalars as usize];
            let mut buf = [0u8; 4];
            for x in &mut data {
                r.read_exact(&mut buf)?;
                *x = f32::from_le_bytes(buf);
            }
            store.add(name, Matrix::from_vec(rows as usize, cols as usize, data));
        }
        Ok(store)
    }

    /// Copies values from `other` into `self` by position.
    ///
    /// # Panics
    /// Panics if the stores have different parameter counts or shapes.
    pub fn copy_from(&mut self, other: &ParamStore) {
        self.try_copy_from(other).expect("param store mismatch");
    }

    /// Fallible [`ParamStore::copy_from`]: returns a description of the
    /// first count/shape mismatch instead of panicking. Model loaders use
    /// this so a corrupted checkpoint surfaces as a typed error.
    pub fn try_copy_from(&mut self, other: &ParamStore) -> Result<(), String> {
        if self.values.len() != other.values.len() {
            return Err(format!(
                "param count mismatch: expected {}, checkpoint has {}",
                self.values.len(),
                other.values.len()
            ));
        }
        for (i, (a, b)) in self.values.iter().zip(&other.values).enumerate() {
            if a.shape() != b.shape() {
                return Err(format!(
                    "param {i} ({}) shape mismatch: expected {:?}, checkpoint has {:?}",
                    self.names[i],
                    a.shape(),
                    b.shape()
                ));
            }
        }
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            a.data_mut().copy_from_slice(b.data());
        }
        self.version = fresh_version();
        Ok(())
    }
}

fn invalid_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add(
            "layer0.w",
            Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32 * 0.1),
        );
        let b = store.add("layer0.b", Matrix::row_vector(&[1.0, -2.0, 3.5, 0.0]));

        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let loaded = ParamStore::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.value(w), store.value(w));
        assert_eq!(loaded.value(b), store.value(b));
        assert_eq!(loaded.name(w), "layer0.w");
    }

    #[test]
    fn load_rejects_bad_magic() {
        let buf = b"NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(ParamStore::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn inject_and_collect_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let wv = store.inject(&mut g, w);
        let sq = g.square(wv);
        let loss = g.sum(sq);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, w);
        assert_eq!(grads[0].1.data(), &[2.0, 4.0, 6.0, 8.0]);
    }
}
