//! Forward-pass kernels shared by the autodiff tape ([`crate::Graph`]) and
//! the compiled inference plans ([`crate::InferencePlan`]).
//!
//! Both execution engines call these exact functions, so a plan replay is
//! **bit-identical** to the tape forward pass by construction: there is one
//! implementation of every op's arithmetic, not two that merely agree. Each
//! kernel fully overwrites its output (which arrives pre-shaped with
//! unspecified contents) and allocates nothing.

use crate::matrix::Matrix;

// ---- scalar maps (the elementwise op set) ----

#[inline]
pub(crate) fn relu(x: f32) -> f32 {
    x.max(0.0)
}

#[inline]
pub(crate) fn leaky_relu(x: f32, alpha: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        alpha * x
    }
}

#[inline]
pub(crate) fn elu_plus_one(x: f32) -> f32 {
    if x > 0.0 {
        x + 1.0
    } else {
        x.exp()
    }
}

#[inline]
pub(crate) fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[inline]
pub(crate) fn exp_clamped(x: f32) -> f32 {
    x.min(30.0).exp()
}

#[inline]
pub(crate) fn ln_eps(x: f32, eps: f32) -> f32 {
    (x.max(0.0) + eps).ln()
}

#[inline]
pub(crate) fn huber(r: f32, delta: f32) -> f32 {
    if r.abs() <= delta {
        0.5 * r * r
    } else {
        delta * (r.abs() - 0.5 * delta)
    }
}

// ---- elementwise drivers ----

/// `out[i] = f(a[i])` over the flat data, in data order.
pub(crate) fn unary_map(a: &Matrix, out: &mut Matrix, f: impl Fn(f32) -> f32) {
    for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
        *o = f(x);
    }
}

/// `out[i] = f(a[i], b[i])` over the flat data, in data order.
pub(crate) fn binary_zip(a: &Matrix, b: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(x, y);
    }
}

// ---- structured kernels ----

/// Matrix (`R x C`) plus a `1 x C` row vector broadcast over rows.
pub(crate) fn add_row_vec(m: &Matrix, row: &Matrix, out: &mut Matrix) {
    for i in 0..m.rows() {
        for ((o, &x), &b) in out.row_mut(i).iter_mut().zip(m.row(i)).zip(row.data()) {
            *o = x + b;
        }
    }
}

/// Matrix (`R x C`) times an `R x 1` column vector broadcast over columns.
pub(crate) fn mul_col_vec(m: &Matrix, col: &Matrix, out: &mut Matrix) {
    for i in 0..m.rows() {
        let s = col.get(i, 0);
        for (o, &x) in out.row_mut(i).iter_mut().zip(m.row(i)) {
            *o = x * s;
        }
    }
}

/// Row-wise softmax.
pub(crate) fn softmax_rows(a: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let row = out.row_mut(i);
        row.copy_from_slice(a.row(i));
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Per-row sum into an `R x 1` output.
pub(crate) fn row_sum(a: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let s: f32 = a.row(i).iter().sum();
        out.set(i, 0, s);
    }
}

/// Column concatenation of two same-row-count matrices.
pub(crate) fn concat_cols(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let ca = a.cols();
    for i in 0..a.rows() {
        let dst = out.row_mut(i);
        dst[..ca].copy_from_slice(a.row(i));
        dst[ca..].copy_from_slice(b.row(i));
    }
}

/// Column slice `[start, end)`.
pub(crate) fn slice_cols(a: &Matrix, start: usize, end: usize, out: &mut Matrix) {
    for i in 0..a.rows() {
        out.row_mut(i).copy_from_slice(&a.row(i)[start..end]);
    }
}

/// Per-row prefix sum (the paper's `M_psum` operator).
pub(crate) fn cumsum_cols(a: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let mut acc = 0.0f32;
        for (o, &x) in out.row_mut(i).iter_mut().zip(a.row(i)) {
            acc += x;
            *o = acc;
        }
    }
}

/// The paper's `Norml2` normalized-square map (§5.2).
pub(crate) fn norml2(a: &Matrix, eps: f32, out: &mut Matrix) {
    let d = a.cols() as f32;
    for i in 0..a.rows() {
        let src = a.row(i);
        let dot: f32 = src.iter().map(|&x| x * x).sum();
        let denom = dot + eps;
        for (o, &x) in out.row_mut(i).iter_mut().zip(src) {
            *o = (x * x + eps / d) / denom;
        }
    }
}

/// Piece-wise linear interpolation of Eq. (1). `tau` / `p` broadcast from
/// one row when they have a single row. When `seg` is provided (the tape's
/// backward sweep replays it), the per-row segment choice is recorded:
/// `-1` below range, `-2` at/above range, else the segment index.
pub(crate) fn pwl_interp(
    tau: &Matrix,
    p: &Matrix,
    t: &Matrix,
    out: &mut Matrix,
    mut seg: Option<&mut Vec<i64>>,
) {
    let rows = t.rows();
    let m = tau.cols();
    if let Some(seg) = seg.as_deref_mut() {
        seg.clear();
        seg.resize(rows, 0);
    }
    // index-driven on purpose: three parallel row-broadcast matrices
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        let tr = t.get(r, 0);
        let taur = tau.row(if tau.rows() == 1 { 0 } else { r });
        let pr = p.row(if p.rows() == 1 { 0 } else { r });
        if tr < taur[0] {
            if let Some(seg) = seg.as_deref_mut() {
                seg[r] = -1;
            }
            out.set(r, 0, pr[0]);
        } else if tr >= taur[m - 1] {
            if let Some(seg) = seg.as_deref_mut() {
                seg[r] = -2;
            }
            out.set(r, 0, pr[m - 1]);
        } else {
            // binary search for the segment i with taur[i] <= tr < taur[i+1]
            let mut lo = 0usize;
            let mut hi = m - 1;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if taur[mid] <= tr {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let denom = (taur[lo + 1] - taur[lo]).max(1e-12);
            let alpha = (tr - taur[lo]) / denom;
            if let Some(seg) = seg.as_deref_mut() {
                seg[r] = lo as i64;
            }
            out.set(r, 0, pr[lo] + alpha * (pr[lo + 1] - pr[lo]));
        }
    }
}

/// Per-block linear map — the decoder of the paper's model M (§5.2).
/// Iterates blocks-outer / rows-inner with a 4-row unroll: each output's
/// reduction chain is unchanged (bias first, then the chunk in index
/// order — bit-identical to the straightforward loop), but four
/// *independent* chains run interleaved, so the CPU overlaps their FMA
/// latencies instead of serializing on one accumulator.
pub(crate) fn block_linear(input: &Matrix, weight: &Matrix, bias: &Matrix, out: &mut Matrix) {
    let blocks = weight.rows();
    let h = weight.cols();
    let rows = input.rows();
    let ic = input.cols();
    let data = input.data();
    for i in 0..blocks {
        let w = weight.row(i);
        let b = bias.get(0, i);
        let col = i * h;
        let mut r = 0;
        while r + 4 <= rows {
            let c0 = &data[r * ic + col..r * ic + col + h];
            let c1 = &data[(r + 1) * ic + col..(r + 1) * ic + col + h];
            let c2 = &data[(r + 2) * ic + col..(r + 2) * ic + col + h];
            let c3 = &data[(r + 3) * ic + col..(r + 3) * ic + col + h];
            let (mut a0, mut a1, mut a2, mut a3) = (b, b, b, b);
            for (k, &wv) in w.iter().enumerate() {
                a0 += c0[k] * wv;
                a1 += c1[k] * wv;
                a2 += c2[k] * wv;
                a3 += c3[k] * wv;
            }
            out.set(r, i, a0);
            out.set(r + 1, i, a1);
            out.set(r + 2, i, a2);
            out.set(r + 3, i, a3);
            r += 4;
        }
        while r < rows {
            let chunk = &data[r * ic + col..r * ic + col + h];
            let mut acc = b;
            for (&x, &wv) in chunk.iter().zip(w) {
                acc += x * wv;
            }
            out.set(r, i, acc);
            r += 1;
        }
    }
}

/// Multilinear lattice interpolation over the unit hypercube.
pub(crate) fn lattice(input: &Matrix, params: &Matrix, out: &mut Matrix) {
    let m = input.cols();
    for r in 0..input.rows() {
        let x = input.row(r);
        let mut acc = 0.0f32;
        for mask in 0..(1usize << m) {
            let mut w = 1.0f32;
            for (j, &xj) in x.iter().enumerate() {
                let c = xj.clamp(0.0, 1.0);
                w *= if mask >> j & 1 == 1 { c } else { 1.0 - c };
            }
            acc += w * params.get(0, mask);
        }
        out.set(r, 0, acc);
    }
}
