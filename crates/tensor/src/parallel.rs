//! Scoped-thread row-parallel dispatcher for the tensor kernels and the
//! training hot path.
//!
//! There is no persistent thread pool: workers are `std::thread::scope`
//! threads spawned per call, so the helpers are only used above a size
//! threshold (each kernel gates on its own flop estimate; see
//! [`crate::Matrix::matmul`]). Work is always split into **contiguous,
//! disjoint** chunks whose boundaries depend only on the input size and the
//! thread count — never on scheduling — so every helper here is
//! deterministic: the same inputs and the same thread count produce
//! bit-identical results, and the row-partitioned kernels are bit-identical
//! to their serial counterparts for *any* thread count.
//!
//! ## The threading knob
//!
//! The worker count is resolved, in order, from:
//!
//! 1. an explicit per-call request (`Matrix::matmul_threaded(_, n)` with
//!    `n > 0`);
//! 2. a process-wide override set with [`set_threads`];
//! 3. the `SELNET_THREADS` environment variable (read once);
//! 4. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SELNET_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Sets the process-wide worker count (`0` restores the automatic
/// `SELNET_THREADS` / `available_parallelism` resolution).
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Resolves a requested worker count: `requested > 0` wins, otherwise the
/// process-wide configuration (see the module docs for the full order).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        let configured = CONFIGURED.load(Ordering::Relaxed);
        if configured > 0 {
            configured
        } else {
            default_threads()
        }
    }
}

/// The process-wide worker count currently in effect.
pub fn configured_threads() -> usize {
    effective_threads(0)
}

/// Splits `total` items into at most `threads` contiguous ranges of at
/// least `min_per_chunk` items (the final range takes the remainder).
///
/// The boundaries depend only on `(total, threads, min_per_chunk)` —
/// never on scheduling — which is what makes every consumer here (and
/// the chunked plan replay in [`crate::InferencePlan::run_chunked`])
/// deterministic: the same
/// inputs and the same thread count always produce the same partition.
pub fn chunk_ranges(total: usize, threads: usize, min_per_chunk: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let max_chunks = total.div_ceil(min_per_chunk.max(1));
    let chunks = threads.clamp(1, max_chunks);
    let per = total.div_ceil(chunks);
    (0..chunks)
        .map(|c| (c * per, ((c + 1) * per).min(total)))
        .filter(|(s, e)| s < e)
        .collect()
}

/// Runs `f(first_row, rows)` over disjoint row-aligned chunks of a
/// row-major buffer, on up to `threads` scoped threads. With one chunk the
/// call runs inline on the caller's thread.
pub fn par_row_chunks_mut<F>(
    data: &mut [f32],
    row_width: usize,
    threads: usize,
    min_rows: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let width = row_width.max(1);
    let rows = data.len() / width;
    let ranges = chunk_ranges(rows, threads, min_rows);
    if ranges.len() <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0usize;
        for &(start, end) in &ranges {
            let take = (end - start) * width;
            debug_assert_eq!(start * width, consumed);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            consumed += take;
            let f = &f;
            scope.spawn(move || f(start, head));
        }
    });
}

/// Maps `f` over `0..count` on up to `threads` scoped threads, returning
/// the results in index order (scheduling never affects the output).
pub fn par_map_indexed<R, F>(count: usize, threads: usize, min_per_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let ranges = chunk_ranges(count, threads, min_per_chunk);
    if ranges.len() <= 1 {
        return (0..count).map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(count);
    out.resize_with(count, || None);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut out;
        for &(start, end) in &ranges {
            let (head, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (off, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(start + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all chunks filled"))
        .collect()
}

/// Fills an existing `width`-column row-major buffer row by row with
/// `fill(row_index, row)`, parallelized over row chunks. This is the
/// allocation-free sibling of [`par_build_rows`] — the training loops call
/// it on tape-owned leaf buffers (see `Graph::leaf_with`) so batch assembly
/// recycles storage instead of building a fresh `Vec` per batch.
pub fn par_fill_rows<F>(data: &mut [f32], width: usize, threads: usize, fill: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if width == 0 || data.is_empty() {
        return;
    }
    // ~64k elements per chunk keeps spawn cost negligible next to the copy
    let min_rows = (65_536 / width).max(1);
    par_row_chunks_mut(data, width, threads, min_rows, |first_row, chunk| {
        for (off, row) in chunk.chunks_exact_mut(width).enumerate() {
            fill(first_row + off, row);
        }
    });
}

/// Builds a `count x width` row-major buffer by filling each row with
/// `fill(row_index, row)`, parallelized over row chunks.
pub fn par_build_rows<F>(count: usize, width: usize, threads: usize, fill: F) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let mut data = vec![0.0f32; count * width];
    par_fill_rows(&mut data, width, threads, fill);
    data
}

/// Runs `f(i, &mut states[i])` for every state on up to `threads` scoped
/// threads and returns the results in index order. States are split into
/// contiguous, disjoint chunks whose boundaries depend only on the input
/// size and thread count, so scheduling never affects the output — the
/// per-partition training tapes ride this to stay deterministic while each
/// job mutates (resets and rebuilds) its own persistent `Graph`.
pub fn par_map_states<S, R, F>(states: &mut [S], threads: usize, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let count = states.len();
    let ranges = chunk_ranges(count, threads, 1);
    if ranges.len() <= 1 {
        return states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(count);
    out.resize_with(count, || None);
    std::thread::scope(|scope| {
        let mut srest: &mut [S] = states;
        let mut orest: &mut [Option<R>] = &mut out;
        for &(start, end) in &ranges {
            let (shead, stail) = srest.split_at_mut(end - start);
            srest = stail;
            let (ohead, otail) = orest.split_at_mut(end - start);
            orest = otail;
            let f = &f;
            scope.spawn(move || {
                for (off, (slot, state)) in ohead.iter_mut().zip(shead.iter_mut()).enumerate() {
                    *slot = Some(f(start + off, state));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all chunks filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_prefers_explicit_request() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn chunk_ranges_cover_everything_once() {
        for total in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8] {
                for min in [1usize, 10, 400] {
                    let ranges = chunk_ranges(total, threads, min);
                    let mut expect = 0usize;
                    for &(s, e) in &ranges {
                        assert_eq!(s, expect);
                        assert!(e > s);
                        expect = e;
                    }
                    assert_eq!(expect, total);
                    assert!(ranges.len() <= threads.max(1));
                }
            }
        }
    }

    #[test]
    fn par_row_chunks_mut_visits_each_row_once() {
        let rows = 37;
        let width = 5;
        let mut data = vec![0.0f32; rows * width];
        par_row_chunks_mut(&mut data, width, 4, 1, |first_row, chunk| {
            for (off, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + off) as f32;
                }
            }
        });
        for (i, row) in data.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&v| v == i as f32), "row {i}: {row:?}");
        }
    }

    #[test]
    fn par_map_indexed_is_ordered() {
        for threads in [1usize, 2, 5] {
            let out = par_map_indexed(23, threads, 1, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_build_rows_matches_serial() {
        let serial = par_build_rows(11, 3, 1, |i, row| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 3 + j) as f32;
            }
        });
        let parallel = par_build_rows(11, 3, 4, |i, row| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 3 + j) as f32;
            }
        });
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 33);
    }

    #[test]
    fn zero_width_rows_are_harmless() {
        assert!(par_build_rows(4, 0, 2, |_, _| unreachable!()).is_empty());
    }

    #[test]
    fn par_map_states_mutates_each_state_once_in_order() {
        for threads in [1usize, 2, 5] {
            let mut states: Vec<u64> = (0..13).map(|i| i as u64).collect();
            let out = par_map_states(&mut states, threads, |i, s| {
                *s += 100;
                (i as u64) * 2
            });
            assert_eq!(out, (0..13).map(|i| i * 2).collect::<Vec<u64>>());
            assert_eq!(states, (100..113).collect::<Vec<u64>>());
        }
    }
}
