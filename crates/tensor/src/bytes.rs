//! Little-endian scalar framing helpers shared by every on-disk and
//! on-wire format in the workspace (model snapshots in `selnet-core`,
//! the serving protocol in `selnet-serve`). One canonical set of
//! read/write functions keeps the byte order decision in a single place
//! instead of per-format hand-rolled copies.
//!
//! All helpers are plain `io::Read`/`io::Write` adapters: writers emit
//! the scalar's `to_le_bytes`, readers `read_exact` into a fixed array
//! and decode with `from_le_bytes`, so a short read surfaces as the
//! caller's `io::Error` rather than a silent truncation.

use std::io::{self, Read, Write};

/// Writes a `u8`.
pub fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads a `u8`.
pub fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a `u16` little-endian.
pub fn write_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u16`.
pub fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Writes a `u32` little-endian.
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u32`.
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` little-endian.
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u64`.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f32` little-endian.
pub fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `f32`.
pub fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Writes an `f64` little-endian.
pub fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `f64`.
pub fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scalar round-trips bit for bit, including NaN payloads.
    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 0xAB).unwrap();
        write_u16(&mut buf, 0xBEEF).unwrap();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, 0x0123_4567_89AB_CDEF).unwrap();
        write_f32(&mut buf, f32::from_bits(0x7FC0_1234)).unwrap();
        write_f64(&mut buf, -0.0).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), 0xAB);
        assert_eq!(read_u16(&mut r).unwrap(), 0xBEEF);
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(read_f32(&mut r).unwrap().to_bits(), 0x7FC0_1234);
        assert_eq!(read_f64(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.is_empty());
    }

    /// A short read is an error, never a silent zero.
    #[test]
    fn short_reads_error() {
        let mut r: &[u8] = &[1, 2, 3];
        assert!(read_u32(&mut r).is_err());
        let mut empty: &[u8] = &[];
        assert!(read_f32(&mut empty).is_err());
    }
}
