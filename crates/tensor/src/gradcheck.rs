//! Finite-difference gradient verification, used by the test suites of
//! every crate that builds custom loss surfaces on the tape.

use crate::graph::{Graph, Var};
use crate::matrix::Matrix;

/// Result of a gradient check for one input.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_diff: f64,
    /// Largest relative difference (normalized by gradient magnitude).
    pub max_rel_diff: f64,
}

/// Checks the analytic gradient of a scalar function built on the tape
/// against central finite differences.
///
/// `build` receives a (reset) graph and the current input values (one
/// matrix per input) and must return `(input_vars, loss_var)` where
/// `loss_var` is `1 x 1`. Analytic gradients are compared entry-by-entry
/// against `(f(x + h) - f(x - h)) / 2h`. All finite-difference evaluations
/// share one reused arena tape, so every gradcheck in the workspace also
/// exercises the reset-and-reuse path of [`Graph`].
pub fn check_gradients(
    inputs: &[Matrix],
    h: f32,
    build: impl Fn(&mut Graph, &[Matrix]) -> (Vec<Var>, Var),
) -> GradCheckReport {
    // analytic
    let mut g = Graph::new();
    let (vars, loss) = build(&mut g, inputs);
    assert_eq!(
        vars.len(),
        inputs.len(),
        "build must return one Var per input"
    );
    g.backward(loss);
    let analytic: Vec<Matrix> = vars.iter().map(|&v| g.grad(v)).collect();

    let mut eval_tape = Graph::new();
    let mut eval = |xs: &[Matrix]| -> f64 {
        eval_tape.reset();
        let (_, loss) = build(&mut eval_tape, xs);
        eval_tape.value(loss).get(0, 0) as f64
    };

    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    for (i, input) in inputs.iter().enumerate() {
        for idx in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[i].data_mut()[idx] += h;
            let mut minus = inputs.to_vec();
            minus[i].data_mut()[idx] -= h;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h as f64);
            let a = analytic[i].data()[idx] as f64;
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-6);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_ok(report: &GradCheckReport) {
        assert!(
            report.max_rel_diff < 5e-2 || report.max_abs_diff < 5e-3,
            "gradcheck failed: {report:?}"
        );
    }

    #[test]
    fn matmul_chain_gradients() {
        let a = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.3 + 0.1);
        let b = Matrix::from_fn(4, 2, |i, j| (i + 2 * j) as f32 * 0.2 - 0.5);
        let report = check_gradients(&[a, b], 1e-2, |g, xs| {
            let a = g.leaf(xs[0].clone());
            let b = g.leaf(xs[1].clone());
            let c = g.matmul(a, b);
            let t = g.tanh(c);
            let loss = g.mean(t);
            (vec![a, b], loss)
        });
        assert_ok(&report);
    }

    #[test]
    fn norml2_gradients() {
        let x = Matrix::from_fn(2, 5, |i, j| 0.3 * (i as f32 + 1.0) * ((j as f32) - 2.0));
        let report = check_gradients(&[x], 1e-3, |g, xs| {
            let x = g.leaf(xs[0].clone());
            let n = g.norml2(x, 1e-3);
            let sq = g.square(n);
            let loss = g.sum(sq);
            (vec![x], loss)
        });
        assert_ok(&report);
    }

    #[test]
    fn cumsum_and_pwl_gradients() {
        // tau from positive increments, p from positive increments,
        // interpolate at fixed t — exactly the SelNet head structure.
        let raw_tau = Matrix::from_fn(3, 4, |i, j| 0.2 + 0.1 * ((i + j) as f32));
        let raw_p = Matrix::from_fn(3, 5, |i, j| 0.3 + 0.05 * ((2 * i + j) as f32));
        let report = check_gradients(&[raw_tau, raw_p], 1e-3, |g, xs| {
            let rt = g.leaf(xs[0].clone());
            let rp = g.leaf(xs[1].clone());
            let n = g.norml2(rt, 1e-3);
            let scaled = g.scale(n, 2.0); // tmax = 2
            let tau_pos = g.cumsum_cols(scaled);
            let zeros = g.leaf(Matrix::zeros(3, 1));
            let tau = g.concat_cols(zeros, tau_pos);
            let p_inc = g.softplus(rp);
            let p = g.cumsum_cols(p_inc);
            let t = g.leaf(Matrix::col_vector(&[0.31, 0.77, 1.44]));
            let y = g.pwl_interp(tau, p, t);
            let loss = g.mean(y);
            (vec![rt, rp], loss)
        });
        assert_ok(&report);
    }

    #[test]
    fn block_linear_gradients() {
        let x = Matrix::from_fn(2, 6, |i, j| (i * 6 + j) as f32 * 0.1 - 0.2);
        let w = Matrix::from_fn(3, 2, |i, j| 0.4 - (i + j) as f32 * 0.15);
        let b = Matrix::row_vector(&[0.1, -0.1, 0.2]);
        let report = check_gradients(&[x, w, b], 1e-3, |g, xs| {
            let x = g.leaf(xs[0].clone());
            let w = g.leaf(xs[1].clone());
            let b = g.leaf(xs[2].clone());
            let y = g.block_linear(x, w, b);
            let sq = g.square(y);
            let loss = g.sum(sq);
            (vec![x, w, b], loss)
        });
        assert_ok(&report);
    }

    #[test]
    fn lattice_gradients() {
        let x = Matrix::from_fn(3, 3, |i, j| 0.15 + 0.2 * ((i + j) % 3) as f32);
        let p = Matrix::from_fn(1, 8, |_, j| j as f32 * 0.3 - 1.0);
        let report = check_gradients(&[x, p], 1e-3, |g, xs| {
            let x = g.leaf(xs[0].clone());
            let p = g.leaf(xs[1].clone());
            let y = g.lattice(x, p);
            let sq = g.square(y);
            let loss = g.sum(sq);
            (vec![x, p], loss)
        });
        assert_ok(&report);
    }

    #[test]
    fn huber_log_loss_gradients() {
        let pred = Matrix::col_vector(&[3.0, 150.0, 0.4, 9.0]);
        let report = check_gradients(&[pred], 1e-3, |g, xs| {
            let pred = g.leaf(xs[0].clone());
            let target = g.leaf(Matrix::col_vector(&[5.0, 100.0, 1.0, 9.0]));
            let lp = g.ln_eps(pred, 1.0);
            let lt = g.ln_eps(target, 1.0);
            let r = g.sub(lt, lp);
            let h = g.huber(r, 1.345);
            let loss = g.mean(h);
            (vec![pred], loss)
        });
        assert_ok(&report);
    }

    #[test]
    fn softmax_and_gating_gradients() {
        let logits = Matrix::from_fn(3, 4, |i, j| (i as f32 * 0.7 - j as f32 * 0.4).sin());
        let expert = Matrix::from_fn(3, 4, |i, j| ((i + j) as f32).cos());
        let report = check_gradients(&[logits, expert], 1e-3, |g, xs| {
            let l = g.leaf(xs[0].clone());
            let e = g.leaf(xs[1].clone());
            let gate = g.softmax_rows(l);
            let weighted = g.mul(gate, e);
            let out = g.row_sum(weighted);
            let loss = g.mean(out);
            (vec![l, e], loss)
        });
        assert_ok(&report);
    }
}
