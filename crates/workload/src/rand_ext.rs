//! Distribution sampling helpers (normal, gamma, beta) implemented on top
//! of `rand` so no extra dependency is needed.

use rand::Rng;

/// Standard-normal sample via Box–Muller.
pub fn sample_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang; shapes < 1 use the boost
/// `Gamma(a) = Gamma(a+1) * U^{1/a}`.
pub fn sample_gamma(shape: f64, rng: &mut impl Rng) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(alpha, beta) sample in `[0, 1]` via two gammas.
pub fn sample_beta(alpha: f64, beta: f64, rng: &mut impl Rng) -> f64 {
    let a = sample_gamma(alpha, rng);
    let b = sample_gamma(beta, rng);
    if a + b == 0.0 {
        0.5
    } else {
        a / (a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(13);
        let (alpha, beta) = (3.0, 2.5);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_beta(alpha, beta, &mut rng)).collect();
        assert!(samples.iter().all(|&s| (0.0..=1.0).contains(&s)));
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let expected_mean = alpha / (alpha + beta);
        assert!(
            (mean - expected_mean).abs() < 0.01,
            "mean {mean} vs {expected_mean}"
        );
        let var: f64 = samples
            .iter()
            .map(|&s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n as f64;
        let expected_var = alpha * beta / ((alpha + beta) * (alpha + beta) * (alpha + beta + 1.0));
        assert!(
            (var - expected_var).abs() < 0.005,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        for shape in [0.5, 1.0, 4.0] {
            let n = 30_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() / shape < 0.05,
                "shape {shape}: mean {mean}"
            );
        }
    }
}
