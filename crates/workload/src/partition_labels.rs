//! Per-partition ground-truth labels for the joint training loss of the
//! partitioned model (§5.3): `J_joint` needs the local selectivity
//! `f_i(x, t, D_i)` for every partition `D_i`.

use crate::query::{LabeledQuery, PartitionedLabels};
use selnet_data::Dataset;
use selnet_index::Partitioning;
use selnet_metric::DistanceKind;

/// Computes `labels[query][part][threshold]` — the exact selectivity of
/// each query/threshold pair restricted to each partition. The per-part
/// counts always sum to the global label (Observation 1 of the paper).
pub fn label_partitions(
    ds: &Dataset,
    partitioning: &Partitioning,
    queries: &[LabeledQuery],
    kind: DistanceKind,
    threads: usize,
) -> PartitionedLabels {
    let k = partitioning.k();
    let threads = selnet_tensor::parallel::effective_threads(threads).min(queries.len().max(1));

    let mut labels: Vec<Option<Vec<Vec<f64>>>> = vec![None; queries.len()];
    std::thread::scope(|scope| {
        let chunk = queries.len().div_ceil(threads);
        let mut rest: &mut [Option<Vec<Vec<f64>>>] = &mut labels;
        let mut start = 0usize;
        for _ in 0..threads {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            scope.spawn(move || {
                // per-thread scratch: distances grouped by partition
                let mut per_part: Vec<Vec<f32>> = vec![Vec::new(); k];
                for (off, slot) in head.iter_mut().enumerate() {
                    let q = &queries[start + off];
                    for p in &mut per_part {
                        p.clear();
                    }
                    for (i, row) in ds.iter().enumerate() {
                        per_part[partitioning.assignments()[i]].push(kind.eval(&q.x, row));
                    }
                    for p in &mut per_part {
                        p.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                    }
                    let mut rows = Vec::with_capacity(k);
                    for p in &per_part {
                        let counts: Vec<f64> = q
                            .thresholds
                            .iter()
                            .map(|&t| p.partition_point(|&d| d <= t) as f64)
                            .collect();
                        rows.push(counts);
                    }
                    *slot = Some(rows);
                }
            });
            start += take;
        }
    });
    PartitionedLabels {
        labels: labels.into_iter().map(|l| l.expect("labeled")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_workload, WorkloadConfig};
    use selnet_data::generators::{fasttext_like, GeneratorConfig};
    use selnet_index::PartitionMethod;

    #[test]
    fn partition_labels_sum_to_global() {
        let ds = fasttext_like(&GeneratorConfig::new(400, 5, 3, 2));
        let cfg = WorkloadConfig {
            num_queries: 10,
            thresholds_per_query: 8,
            kind: DistanceKind::Euclidean,
            scheme: crate::generate::ThresholdScheme::GeometricSelectivity,
            seed: 1,
            threads: 2,
        };
        let w = generate_workload(&ds, &cfg);
        let p = Partitioning::build(
            &ds,
            DistanceKind::Euclidean,
            PartitionMethod::CoverTree { ratio: 0.1 },
            3,
            0,
        );
        let pl = label_partitions(&ds, &p, &w.train, DistanceKind::Euclidean, 2);
        assert_eq!(pl.labels.len(), w.train.len());
        for (q, parts) in w.train.iter().zip(&pl.labels) {
            assert_eq!(parts.len(), p.k());
            for (j, &global) in q.selectivities.iter().enumerate() {
                let sum: f64 = parts.iter().map(|row| row[j]).sum();
                assert_eq!(sum, global, "Observation 1 violated");
            }
        }
    }
}
