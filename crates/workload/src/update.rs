//! Update streams and incremental label maintenance (§5.4, §7.6).
//!
//! The paper's update experiment applies a stream of 100 operations, each
//! inserting or deleting 5 records, then measures estimator error as the
//! model incrementally retrains. The expensive part of the pipeline — "we
//! update all the labels (ground truth) in the training and the validation
//! data" — is done *incrementally* here: an inserted/deleted record `o`
//! changes the label of `(x, t)` by ±1 exactly when `d(x, o) <= t`.

use crate::drift::{DriftStep, Placement};
use crate::query::LabeledQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_data::Dataset;
use selnet_metric::DistanceKind;

/// One applied update operation.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// Records that were inserted.
    Insert(Vec<Vec<f32>>),
    /// Records that were deleted.
    Delete(Vec<Vec<f32>>),
}

impl UpdateOp {
    /// Short label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateOp::Insert(_) => "insert",
            UpdateOp::Delete(_) => "delete",
        }
    }
}

/// Generates and applies a stream of insert/delete operations while keeping
/// query labels exact.
pub struct UpdateSimulator {
    rng: StdRng,
    /// Records per operation (paper: 5).
    pub batch: usize,
    /// Probability an operation is an insertion.
    pub insert_prob: f64,
    /// Noise scale for synthesized insertions (relative to the sampled
    /// template point).
    pub noise: f32,
}

/// A resumable snapshot of an [`UpdateSimulator`]: the full RNG state
/// plus the op-generation knobs. [`UpdateSimulator::restore`] rebuilds a
/// simulator whose op stream continues **bit-for-bit** where the snapshot
/// was taken — how an interrupted drift gauntlet replays exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulatorSnapshot {
    /// Opaque RNG state words (see `StdRng::state`).
    pub rng_state: [u64; 4],
    /// Records per operation.
    pub batch: usize,
    /// Probability an operation is an insertion.
    pub insert_prob: f64,
    /// Noise scale for synthesized insertions.
    pub noise: f32,
}

impl UpdateSimulator {
    /// Creates a simulator matching the paper's §7.6 setting: 5 records per
    /// op, balanced inserts/deletes.
    pub fn new(seed: u64) -> Self {
        UpdateSimulator {
            rng: StdRng::seed_from_u64(seed),
            batch: 5,
            insert_prob: 0.5,
            noise: 0.05,
        }
    }

    /// The simulator's RNG state at this instant. Pair with the op index
    /// to checkpoint a gauntlet (drift schedules are pure functions of the
    /// op index and carry no RNG of their own).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Captures a resumable snapshot of the simulator.
    pub fn snapshot(&self) -> SimulatorSnapshot {
        SimulatorSnapshot {
            rng_state: self.rng.state(),
            batch: self.batch,
            insert_prob: self.insert_prob,
            noise: self.noise,
        }
    }

    /// Rebuilds a simulator from a [`SimulatorSnapshot`]; the resumed op
    /// stream is bit-identical to the one the snapshotted simulator would
    /// have produced.
    pub fn restore(snap: &SimulatorSnapshot) -> Self {
        UpdateSimulator {
            rng: StdRng::from_state(snap.rng_state),
            batch: snap.batch,
            insert_prob: snap.insert_prob,
            noise: snap.noise,
        }
    }

    /// Applies one operation to `ds`, incrementally fixing the labels of
    /// every query in `splits`. Returns the applied operation.
    pub fn step(
        &mut self,
        ds: &mut Dataset,
        splits: &mut [&mut [LabeledQuery]],
        kind: DistanceKind,
    ) -> UpdateOp {
        // the un-drifted baseline: same stream as a zero-shift drift step
        let spec = DriftStep {
            insert_prob: self.insert_prob,
            noise: self.noise,
            placement: Placement::Shifted(vec![0.0; ds.dim()]),
        };
        self.step_drifted(ds, splits, kind, &spec)
    }

    /// Applies one operation under a drift schedule's per-op [`DriftStep`]:
    /// inserted records are placed where the schedule says (template +
    /// shift, or on an adversarial distance shell), deletions stay uniform
    /// — the insertion flow is what drags the distribution. Labels in
    /// `splits` are kept exact incrementally, same as [`UpdateSimulator::step`].
    pub fn step_drifted(
        &mut self,
        ds: &mut Dataset,
        splits: &mut [&mut [LabeledQuery]],
        kind: DistanceKind,
        spec: &DriftStep,
    ) -> UpdateOp {
        let insert = self.rng.gen_bool(spec.insert_prob) || ds.len() <= self.batch;
        if insert {
            let mut records = Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                records.push(self.synthesize(ds, spec));
            }
            for r in &records {
                ds.push(r);
                adjust_labels(splits, r, kind, 1.0);
            }
            UpdateOp::Insert(records)
        } else {
            let mut records = Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                let idx = self.rng.gen_range(0..ds.len());
                let removed = ds.swap_remove(idx);
                adjust_labels(splits, &removed, kind, -1.0);
                records.push(removed);
            }
            UpdateOp::Delete(records)
        }
    }

    /// One standard-normal draw (Box–Muller).
    fn randn(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Synthesizes one inserted record according to the step's placement.
    fn synthesize(&mut self, ds: &Dataset, spec: &DriftStep) -> Vec<f32> {
        match &spec.placement {
            Placement::Shifted(shift) => {
                let template = self.rng.gen_range(0..ds.len());
                let mut v = ds.row(template).to_vec();
                for (j, x) in v.iter_mut().enumerate() {
                    *x += self.randn() * spec.noise + shift[j];
                }
                v
            }
            Placement::Shell { center, radius } => {
                // a uniformly random direction scaled to the shell radius:
                // the §2401.06047-style inverse construction — mass placed
                // at exact distance `radius` from the probe query makes the
                // true selectivity surface jump sharply at t = radius
                let mut dir: Vec<f32> = (0..center.len()).map(|_| self.randn()).collect();
                let norm = dir.iter().map(|d| d * d).sum::<f32>().sqrt().max(1e-12);
                for d in &mut dir {
                    *d /= norm;
                }
                center
                    .iter()
                    .zip(&dir)
                    .map(|(&c, &d)| c + d * radius + self.randn() * spec.noise * 0.01)
                    .collect()
            }
        }
    }
}

/// Adjusts every affected label by `delta` for one changed record.
fn adjust_labels(
    splits: &mut [&mut [LabeledQuery]],
    record: &[f32],
    kind: DistanceKind,
    delta: f64,
) {
    for split in splits.iter_mut() {
        for q in split.iter_mut() {
            let d = kind.eval(&q.x, record);
            // thresholds are sorted: all t >= d are affected
            let start = q.thresholds.partition_point(|&t| t < d);
            for y in &mut q.selectivities[start..] {
                *y += delta;
                debug_assert!(*y >= 0.0, "negative selectivity after update");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_workload, WorkloadConfig};
    use selnet_data::generators::{fasttext_like, GeneratorConfig};

    fn exact_label(ds: &Dataset, x: &[f32], t: f32, kind: DistanceKind) -> f64 {
        ds.iter().filter(|row| kind.eval(x, row) <= t).count() as f64
    }

    #[test]
    fn incremental_labels_stay_exact_through_stream() {
        let mut ds = fasttext_like(&GeneratorConfig::new(300, 5, 3, 1));
        let cfg = WorkloadConfig {
            num_queries: 8,
            thresholds_per_query: 6,
            kind: DistanceKind::Euclidean,
            scheme: crate::generate::ThresholdScheme::GeometricSelectivity,
            seed: 2,
            threads: 1,
        };
        let w = generate_workload(&ds, &cfg);
        let mut train = w.train.clone();
        let mut valid = w.valid.clone();
        let mut sim = UpdateSimulator::new(9);
        for _ in 0..20 {
            {
                let mut splits: Vec<&mut [LabeledQuery]> =
                    vec![train.as_mut_slice(), valid.as_mut_slice()];
                sim.step(&mut ds, &mut splits, DistanceKind::Euclidean);
            }
            // verify against brute force on a sample
            let q = &train[0];
            for (j, &t) in q.thresholds.iter().enumerate() {
                assert_eq!(
                    q.selectivities[j],
                    exact_label(&ds, &q.x, t, DistanceKind::Euclidean),
                    "label drift at threshold {t}"
                );
            }
        }
    }

    #[test]
    fn insert_only_stream_grows_dataset() {
        let mut ds = fasttext_like(&GeneratorConfig::new(50, 4, 2, 3));
        let n0 = ds.len();
        let mut sim = UpdateSimulator::new(4);
        sim.insert_prob = 1.0;
        let mut empty: Vec<&mut [LabeledQuery]> = vec![];
        let op = sim.step(&mut ds, &mut empty, DistanceKind::Euclidean);
        assert!(matches!(op, UpdateOp::Insert(_)));
        assert_eq!(ds.len(), n0 + 5);
    }

    #[test]
    fn delete_only_stream_shrinks_dataset() {
        let mut ds = fasttext_like(&GeneratorConfig::new(50, 4, 2, 3));
        let n0 = ds.len();
        let mut sim = UpdateSimulator::new(4);
        sim.insert_prob = 0.0;
        let mut empty: Vec<&mut [LabeledQuery]> = vec![];
        let op = sim.step(&mut ds, &mut empty, DistanceKind::Euclidean);
        assert!(matches!(op, UpdateOp::Delete(_)));
        assert_eq!(ds.len(), n0 - 5);
    }
}
