//! Query/threshold workload types.

use selnet_metric::DistanceKind;

/// One labeled query: a query object `x`, its `w` thresholds, and the exact
/// ground-truth selectivity at each threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledQuery {
    /// The query vector.
    pub x: Vec<f32>,
    /// Thresholds, sorted ascending.
    pub thresholds: Vec<f32>,
    /// Exact selectivity `|{o : d(x,o) <= t}|` per threshold.
    pub selectivities: Vec<f64>,
}

impl LabeledQuery {
    /// Number of `(x, t)` training pairs this query contributes.
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// Whether the query has no thresholds.
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }
}

/// A complete workload: distance function, threshold cap, and the
/// 80:10:10 query split of Appendix B.1.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Distance function the labels were computed under.
    pub kind: DistanceKind,
    /// Maximum threshold the estimator must support (`t_max`).
    pub tmax: f32,
    /// Training queries.
    pub train: Vec<LabeledQuery>,
    /// Validation queries.
    pub valid: Vec<LabeledQuery>,
    /// Test queries.
    pub test: Vec<LabeledQuery>,
}

impl Workload {
    /// Total number of `(x, t, y)` triples across all splits.
    pub fn num_pairs(&self) -> usize {
        self.train.iter().map(LabeledQuery::len).sum::<usize>()
            + self.valid.iter().map(LabeledQuery::len).sum::<usize>()
            + self.test.iter().map(LabeledQuery::len).sum::<usize>()
    }

    /// Flattens a split into `(x, t, y)` triples (borrowing the query).
    pub fn flatten(split: &[LabeledQuery]) -> Vec<(&[f32], f32, f64)> {
        let mut out = Vec::new();
        for q in split {
            for (i, &t) in q.thresholds.iter().enumerate() {
                out.push((q.x.as_slice(), t, q.selectivities[i]));
            }
        }
        out
    }
}

/// Per-partition ground-truth labels aligned with a `Workload` split:
/// `labels[query][part][threshold]`. Used for the joint training loss of
/// the partitioned model (§5.3).
#[derive(Clone, Debug, Default)]
pub struct PartitionedLabels {
    /// `labels[query][part][threshold]`.
    pub labels: Vec<Vec<Vec<f64>>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_produces_all_pairs() {
        let q = LabeledQuery {
            x: vec![0.0, 1.0],
            thresholds: vec![0.1, 0.2],
            selectivities: vec![1.0, 5.0],
        };
        let queries = [q.clone(), q];
        let flat = Workload::flatten(&queries);
        assert_eq!(flat.len(), 4);
        assert_eq!(flat[1].1, 0.2);
        assert_eq!(flat[1].2, 5.0);
    }
}
