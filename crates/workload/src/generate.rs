//! Workload generation following Appendix B.1 of the paper.
//!
//! Queries are sampled from the database itself. For each query we build a
//! geometric ladder of `w` selectivity values in `[1, |D|/100]` and convert
//! each to the threshold achieving it (the selectivity-quantile of the
//! query's distance distribution) — "such generation better simulates the
//! realistic workload" (§7.9, following Mattig et al.). The alternative
//! Beta(3, 2.5)-distributed thresholds of §7.9 are also provided.

use crate::query::{LabeledQuery, Workload};
use crate::rand_ext::sample_beta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_data::Dataset;
use selnet_metric::DistanceKind;

/// How thresholds are drawn for each query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdScheme {
    /// Geometric ladder of selectivities in `[1, |D|/100]` (default,
    /// Appendix B.1).
    GeometricSelectivity,
    /// Thresholds sampled from `Beta(alpha, beta)` scaled to `[0, tmax]`
    /// (§7.9 uses `Beta(3, 2.5)`).
    Beta {
        /// Beta shape α.
        alpha: f64,
        /// Beta shape β.
        beta: f64,
    },
}

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of distinct query objects.
    pub num_queries: usize,
    /// Thresholds per query (`w`; the paper uses 40).
    pub thresholds_per_query: usize,
    /// Distance function.
    pub kind: DistanceKind,
    /// Threshold scheme.
    pub scheme: ThresholdScheme,
    /// RNG seed.
    pub seed: u64,
    /// Number of worker threads for labeling (0 = all cores).
    pub threads: usize,
}

impl WorkloadConfig {
    /// Default-configured workload: `w = 40`, geometric ladder.
    pub fn new(num_queries: usize, kind: DistanceKind, seed: u64) -> Self {
        WorkloadConfig {
            num_queries,
            thresholds_per_query: 40,
            kind,
            scheme: ThresholdScheme::GeometricSelectivity,
            seed,
            threads: 0,
        }
    }
}

use selnet_tensor::parallel::effective_threads;

/// The geometric selectivity ladder: `w` values spaced geometrically in
/// `[1, n/100]`.
pub fn selectivity_ladder(n: usize, w: usize) -> Vec<f64> {
    assert!(w >= 2, "need at least two rungs");
    let hi = (n as f64 / 100.0).max(2.0);
    (0..w).map(|j| hi.powf(j as f64 / (w - 1) as f64)).collect()
}

/// Computes sorted distances from `x` to every point of `ds`.
pub fn sorted_distances(ds: &Dataset, x: &[f32], kind: DistanceKind) -> Vec<f32> {
    let mut d: Vec<f32> = ds.iter().map(|row| kind.eval(x, row)).collect();
    d.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    d
}

/// Exact selectivity at threshold `t` given the sorted distance array.
pub fn selectivity_from_sorted(sorted: &[f32], t: f32) -> f64 {
    // number of distances <= t == partition point of (d <= t)
    sorted.partition_point(|&d| d <= t) as f64
}

/// Labels one query under the geometric-selectivity scheme.
fn label_geometric(ds: &Dataset, x: &[f32], kind: DistanceKind, ladder: &[f64]) -> LabeledQuery {
    let sorted = sorted_distances(ds, x, kind);
    let n = sorted.len();
    let mut thresholds = Vec::with_capacity(ladder.len());
    let mut selectivities = Vec::with_capacity(ladder.len());
    for &s in ladder {
        let rank = (s.ceil() as usize).clamp(1, n);
        let t = sorted[rank - 1];
        thresholds.push(t);
        selectivities.push(selectivity_from_sorted(&sorted, t));
    }
    // thresholds are non-decreasing by construction (sorted array ranks)
    LabeledQuery {
        x: x.to_vec(),
        thresholds,
        selectivities,
    }
}

/// Labels one query with externally chosen thresholds.
fn label_fixed_thresholds(
    ds: &Dataset,
    x: &[f32],
    kind: DistanceKind,
    thresholds: Vec<f32>,
) -> LabeledQuery {
    let sorted = sorted_distances(ds, x, kind);
    let selectivities = thresholds
        .iter()
        .map(|&t| selectivity_from_sorted(&sorted, t))
        .collect();
    LabeledQuery {
        x: x.to_vec(),
        thresholds,
        selectivities,
    }
}

/// Generates a fully-labeled workload with an 80:10:10 query split.
///
/// Ground truth is exact (multi-threaded brute force over sorted distance
/// arrays).
pub fn generate_workload(ds: &Dataset, cfg: &WorkloadConfig) -> Workload {
    assert!(ds.len() >= 2, "dataset too small");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // sample distinct query indices
    let num_queries = cfg.num_queries.min(ds.len());
    let mut indices: Vec<usize> = (0..ds.len()).collect();
    for i in 0..num_queries {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(num_queries);

    // Beta thresholds need tmax: use the ladder's top rank distance sampled
    // over a few queries as the scale, mirroring the default workload range.
    let w = cfg.thresholds_per_query;
    let ladder = selectivity_ladder(ds.len(), w);
    let scale_t = match cfg.scheme {
        ThresholdScheme::GeometricSelectivity => 0.0,
        ThresholdScheme::Beta { .. } => {
            let probes = indices.iter().take(16);
            let top_rank =
                (ladder.last().copied().unwrap_or(1.0).ceil() as usize).clamp(1, ds.len());
            let mut t = 0.0f32;
            for &qi in probes {
                let sorted = sorted_distances(ds, ds.row(qi), cfg.kind);
                t = t.max(sorted[top_rank - 1]);
            }
            t
        }
    };

    // pre-draw per-query thresholds for the beta scheme (deterministic)
    let beta_thresholds: Vec<Vec<f32>> = match cfg.scheme {
        ThresholdScheme::GeometricSelectivity => Vec::new(),
        ThresholdScheme::Beta { alpha, beta } => (0..num_queries)
            .map(|_| {
                let mut ts: Vec<f32> = (0..w)
                    .map(|_| (sample_beta(alpha, beta, &mut rng) as f32) * scale_t)
                    .collect();
                ts.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                ts
            })
            .collect(),
    };

    // parallel labeling
    let threads = effective_threads(cfg.threads).min(num_queries.max(1));
    let mut labeled: Vec<Option<LabeledQuery>> = vec![None; num_queries];
    std::thread::scope(|scope| {
        let chunk = num_queries.div_ceil(threads);
        let mut rest: &mut [Option<LabeledQuery>] = &mut labeled;
        let mut start = 0usize;
        for _ in 0..threads {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let indices = &indices;
            let ladder = &ladder;
            let beta_thresholds = &beta_thresholds;
            let scheme = cfg.scheme;
            let kind = cfg.kind;
            scope.spawn(move || {
                for (off, slot) in head.iter_mut().enumerate() {
                    let qi = indices[start + off];
                    let x = ds.row(qi);
                    *slot = Some(match scheme {
                        ThresholdScheme::GeometricSelectivity => {
                            label_geometric(ds, x, kind, ladder)
                        }
                        ThresholdScheme::Beta { .. } => label_fixed_thresholds(
                            ds,
                            x,
                            kind,
                            beta_thresholds[start + off].clone(),
                        ),
                    });
                }
            });
            start += take;
        }
    });
    let labeled: Vec<LabeledQuery> = labeled.into_iter().map(|q| q.expect("labeled")).collect();

    // tmax: cover all generated thresholds with a small margin
    let tmax = labeled
        .iter()
        .flat_map(|q| q.thresholds.iter().copied())
        .fold(0.0f32, f32::max)
        * 1.01
        + 1e-6;

    // 80:10:10 split by query
    let n_train = num_queries * 8 / 10;
    let n_valid = num_queries / 10;
    let mut it = labeled.into_iter();
    let train: Vec<_> = it.by_ref().take(n_train).collect();
    let valid: Vec<_> = it.by_ref().take(n_valid).collect();
    let test: Vec<_> = it.collect();

    Workload {
        kind: cfg.kind,
        tmax,
        train,
        valid,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_data::generators::{fasttext_like, GeneratorConfig};

    fn small_ds() -> Dataset {
        fasttext_like(&GeneratorConfig::new(500, 6, 4, 1))
    }

    #[test]
    fn ladder_is_geometric_and_bounded() {
        let ladder = selectivity_ladder(10_000, 40);
        assert_eq!(ladder.len(), 40);
        assert!((ladder[0] - 1.0).abs() < 1e-9);
        assert!((ladder[39] - 100.0).abs() < 1e-6);
        // constant ratio
        let r0 = ladder[1] / ladder[0];
        for w in ladder.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-9);
        }
    }

    #[test]
    fn labels_are_exact_and_consistent() {
        let ds = small_ds();
        let cfg = WorkloadConfig {
            num_queries: 20,
            thresholds_per_query: 10,
            kind: DistanceKind::Euclidean,
            scheme: ThresholdScheme::GeometricSelectivity,
            seed: 3,
            threads: 2,
        };
        let w = generate_workload(&ds, &cfg);
        assert_eq!(w.train.len(), 16);
        assert_eq!(w.valid.len(), 2);
        assert_eq!(w.test.len(), 2);
        for q in w.train.iter().chain(&w.valid).chain(&w.test) {
            // thresholds sorted, selectivities non-decreasing (consistency
            // of the ground truth itself)
            for i in 1..q.thresholds.len() {
                assert!(q.thresholds[i] >= q.thresholds[i - 1]);
                assert!(q.selectivities[i] >= q.selectivities[i - 1]);
            }
            // spot-check exactness by brute force
            let t = q.thresholds[q.thresholds.len() / 2];
            let count = ds
                .iter()
                .filter(|row| DistanceKind::Euclidean.eval(&q.x, row) <= t)
                .count() as f64;
            assert_eq!(count, q.selectivities[q.thresholds.len() / 2]);
            assert!(q.thresholds.last().copied().expect("nonempty") <= w.tmax);
        }
    }

    #[test]
    fn selectivity_ladder_hits_target_counts() {
        let ds = small_ds();
        let cfg = WorkloadConfig {
            num_queries: 5,
            thresholds_per_query: 8,
            kind: DistanceKind::Euclidean,
            scheme: ThresholdScheme::GeometricSelectivity,
            seed: 5,
            threads: 1,
        };
        let w = generate_workload(&ds, &cfg);
        for q in &w.train {
            // smallest rung ~1 (query is itself a DB point → >= 1)
            assert!(q.selectivities[0] >= 1.0);
            // largest rung ~ n/100 = 5 (ties can push it higher)
            assert!(*q.selectivities.last().expect("nonempty") >= 5.0);
        }
    }

    #[test]
    fn beta_scheme_produces_sorted_thresholds() {
        let ds = small_ds();
        let cfg = WorkloadConfig {
            num_queries: 10,
            thresholds_per_query: 12,
            kind: DistanceKind::Cosine,
            scheme: ThresholdScheme::Beta {
                alpha: 3.0,
                beta: 2.5,
            },
            seed: 7,
            threads: 2,
        };
        let w = generate_workload(&ds, &cfg);
        for q in w.train.iter().chain(&w.valid).chain(&w.test) {
            for i in 1..q.thresholds.len() {
                assert!(q.thresholds[i] >= q.thresholds[i - 1]);
                assert!(q.selectivities[i] >= q.selectivities[i - 1]);
            }
            assert!(q.thresholds.iter().all(|&t| t >= 0.0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_ds();
        let cfg = WorkloadConfig::new(8, DistanceKind::Euclidean, 11);
        let a = generate_workload(&ds, &cfg);
        let b = generate_workload(&ds, &cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.tmax, b.tmax);
    }
}
