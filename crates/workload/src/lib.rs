//! # selnet-workload
//!
//! Workload generation and exact ground-truth labeling for the SelNet
//! reproduction, following Appendix B.1 of the paper:
//!
//! * queries sampled from the database;
//! * per query, a geometric ladder of `w = 40` selectivity values in
//!   `[1, |D|/100]` converted to thresholds (or Beta(3, 2.5)-distributed
//!   thresholds, §7.9);
//! * exact labels via multi-threaded brute force;
//! * an 80:10:10 train/validation/test split by query;
//! * per-partition labels (for the §5.3 joint loss) and update streams with
//!   incremental label maintenance (§5.4 / §7.6).

#![warn(missing_docs)]

pub mod drift;
pub mod generate;
pub mod partition_labels;
pub mod query;
pub mod rand_ext;
pub mod update;

pub use drift::{unit_direction, DriftFamily, DriftSchedule, DriftStep, Placement};
pub use generate::{
    generate_workload, selectivity_ladder, sorted_distances, ThresholdScheme, WorkloadConfig,
};
pub use partition_labels::label_partitions;
pub use query::{LabeledQuery, PartitionedLabels, Workload};
pub use update::{SimulatorSnapshot, UpdateOp, UpdateSimulator};
