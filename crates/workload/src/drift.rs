//! Step-counted drift schedules for the §5.4 drift gauntlet.
//!
//! A [`DriftSchedule`] is a *pure function of the operation index*: given
//! op `i` it yields the [`DriftStep`] the simulator applies for that
//! operation. There is no wall clock and no RNG inside a schedule — all
//! randomness lives in [`crate::UpdateSimulator`], whose state is
//! snapshottable — so the same schedule replays bit-for-bit at any scale,
//! which is what lets one gauntlet double as a tier-1 test (tiny) and a
//! recorded benchmark (full).
//!
//! Four families cover the drift taxonomy the gauntlet measures:
//!
//! * **Gradual** — the insertion distribution slides along a fixed
//!   direction at a constant per-op rate (slow covariate drift).
//! * **Abrupt** — the shift is zero until `at_op`, then jumps to a fixed
//!   offset (schema-change / hot-key flip).
//! * **Cyclical** — the shift oscillates sinusoidally along a direction
//!   (diurnal load patterns).
//! * **Adversarial** — inserts land on a thin distance *shell* around a
//!   probe center, with the shell radius wandering over time. Mass
//!   concentrated at exact distance `r` from a query makes the true
//!   selectivity surface jump sharply at threshold `t = r` — the inverse
//!   construction of "Computing Data Distribution from Query
//!   Selectivities" (arXiv:2401.06047) — which is the worst case for a
//!   monotone regressor's knee placement.

/// Where one synthesized insertion should be placed.
#[derive(Clone, Debug, PartialEq)]
pub enum Placement {
    /// Sample a template record uniformly from the dataset and add this
    /// per-dimension offset (on top of the simulator's Gaussian noise).
    /// A zero vector reproduces the legacy un-drifted stream exactly.
    Shifted(Vec<f32>),
    /// Place the record on a thin shell: `center + radius * u` for a
    /// uniformly random unit direction `u` (plus a sliver of noise so the
    /// shell has nonzero thickness).
    Shell {
        /// Shell center — typically a probe query the gauntlet also serves.
        center: Vec<f32>,
        /// Shell radius; the true selectivity surface of queries near
        /// `center` develops a knee at this threshold.
        radius: f32,
    },
}

/// What the simulator should do for one operation: the insert/delete mix,
/// the noise scale, and where insertions land.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftStep {
    /// Probability this operation is an insertion.
    pub insert_prob: f64,
    /// Gaussian noise scale for synthesized records.
    pub noise: f32,
    /// Placement rule for insertions.
    pub placement: Placement,
}

/// The shape of a drift trajectory over operation indices.
#[derive(Clone, Debug, PartialEq)]
pub enum DriftFamily {
    /// Shift grows linearly: `direction * rate * op`.
    Gradual {
        /// Unit direction of the drift in data space.
        direction: Vec<f32>,
        /// Shift magnitude added per operation.
        rate: f32,
    },
    /// Shift is zero before `at_op` and `direction * jump` from then on.
    Abrupt {
        /// Unit direction of the drift in data space.
        direction: Vec<f32>,
        /// Shift magnitude after the jump.
        jump: f32,
        /// Operation index at which the jump happens.
        at_op: usize,
    },
    /// Shift oscillates: `direction * amplitude * sin(2π op / period)`.
    Cyclical {
        /// Unit direction of the drift in data space.
        direction: Vec<f32>,
        /// Peak shift magnitude.
        amplitude: f32,
        /// Operations per full oscillation.
        period_ops: usize,
    },
    /// Inserts land on a distance shell around `center`; the radius sweeps
    /// a triangle wave between `r_min` and `r_max` over `period_ops`.
    Adversarial {
        /// Probe center the shell surrounds.
        center: Vec<f32>,
        /// Smallest shell radius.
        r_min: f32,
        /// Largest shell radius.
        r_max: f32,
        /// Operations for one full `r_min → r_max → r_min` sweep.
        period_ops: usize,
    },
}

/// A complete step-counted drift scenario: op-mix knobs plus a
/// [`DriftFamily`] trajectory. Evaluate with [`DriftSchedule::at`].
#[derive(Clone, Debug, PartialEq)]
pub struct DriftSchedule {
    /// Probability each operation is an insertion. Defaults to 0.7 —
    /// insert-biased, since the insertion flow is what drags the
    /// distribution toward the schedule's target.
    pub insert_prob: f64,
    /// Gaussian noise scale for synthesized records.
    pub noise: f32,
    /// The drift trajectory.
    pub family: DriftFamily,
}

impl DriftSchedule {
    /// Wraps a family with the default op-mix knobs (insert-biased 0.7,
    /// noise 0.05 as in the paper's update setting).
    pub fn new(family: DriftFamily) -> Self {
        DriftSchedule {
            insert_prob: 0.7,
            noise: 0.05,
            family,
        }
    }

    /// Gradual drift along `unit_direction(dim, seed)` at `rate` per op.
    pub fn gradual(dim: usize, seed: u64, rate: f32) -> Self {
        DriftSchedule::new(DriftFamily::Gradual {
            direction: unit_direction(dim, seed),
            rate,
        })
    }

    /// Abrupt jump of magnitude `jump` at operation `at_op`.
    pub fn abrupt(dim: usize, seed: u64, jump: f32, at_op: usize) -> Self {
        DriftSchedule::new(DriftFamily::Abrupt {
            direction: unit_direction(dim, seed),
            jump,
            at_op,
        })
    }

    /// Sinusoidal drift of peak magnitude `amplitude`, one full cycle
    /// every `period_ops` operations.
    pub fn cyclical(dim: usize, seed: u64, amplitude: f32, period_ops: usize) -> Self {
        DriftSchedule::new(DriftFamily::Cyclical {
            direction: unit_direction(dim, seed),
            amplitude,
            period_ops,
        })
    }

    /// Adversarial shell drift around `center`, radius sweeping
    /// `[r_min, r_max]` every `period_ops` operations.
    pub fn adversarial(center: Vec<f32>, r_min: f32, r_max: f32, period_ops: usize) -> Self {
        DriftSchedule::new(DriftFamily::Adversarial {
            center,
            r_min,
            r_max,
            period_ops,
        })
    }

    /// Short family label for reports (`gradual` / `abrupt` / `cyclical` /
    /// `adversarial`).
    pub fn label(&self) -> &'static str {
        match self.family {
            DriftFamily::Gradual { .. } => "gradual",
            DriftFamily::Abrupt { .. } => "abrupt",
            DriftFamily::Cyclical { .. } => "cyclical",
            DriftFamily::Adversarial { .. } => "adversarial",
        }
    }

    /// The [`DriftStep`] for operation `op`. Pure: same `(self, op)` →
    /// same step, always.
    pub fn at(&self, op: usize) -> DriftStep {
        let placement = match &self.family {
            DriftFamily::Gradual { direction, rate } => {
                let m = rate * op as f32;
                Placement::Shifted(direction.iter().map(|&d| d * m).collect())
            }
            DriftFamily::Abrupt {
                direction,
                jump,
                at_op,
            } => {
                let m = if op >= *at_op { *jump } else { 0.0 };
                Placement::Shifted(direction.iter().map(|&d| d * m).collect())
            }
            DriftFamily::Cyclical {
                direction,
                amplitude,
                period_ops,
            } => {
                let phase =
                    2.0 * std::f32::consts::PI * (op % period_ops) as f32 / *period_ops as f32;
                let m = amplitude * phase.sin();
                Placement::Shifted(direction.iter().map(|&d| d * m).collect())
            }
            DriftFamily::Adversarial {
                center,
                r_min,
                r_max,
                period_ops,
            } => {
                // triangle wave: r_min → r_max over the first half-period,
                // back down over the second
                let phase = (op % period_ops) as f32 / *period_ops as f32;
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                Placement::Shell {
                    center: center.clone(),
                    radius: r_min + (r_max - r_min) * tri,
                }
            }
        };
        DriftStep {
            insert_prob: self.insert_prob,
            noise: self.noise,
            placement,
        }
    }
}

/// A deterministic unit vector in `dim` dimensions derived from `seed` by
/// SplitMix64 + Box–Muller — drift directions are reproducible without
/// consuming any simulator RNG.
pub fn unit_direction(dim: usize, seed: u64) -> Vec<f32> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut v: Vec<f32> = (0..dim)
        .map(|_| {
            let u1 = ((next() >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
            let u2 = (next() >> 11) as f64 / (1u64 << 53) as f64;
            ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
        })
        .collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    for x in &mut v {
        *x /= norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_in_op_index() {
        let s = DriftSchedule::cyclical(6, 3, 0.4, 16);
        for op in [0, 1, 7, 15, 16, 100] {
            assert_eq!(s.at(op), s.at(op), "op {op} not pure");
        }
    }

    #[test]
    fn gradual_shift_grows_linearly() {
        let s = DriftSchedule::gradual(4, 1, 0.01);
        let norm = |p: &Placement| match p {
            Placement::Shifted(v) => v.iter().map(|x| x * x).sum::<f32>().sqrt(),
            _ => panic!("expected shifted placement"),
        };
        let a = norm(&s.at(10).placement);
        let b = norm(&s.at(20).placement);
        assert!((a - 0.1).abs() < 1e-5, "rate*op mismatch: {a}");
        assert!((b - 2.0 * a).abs() < 1e-5, "not linear: {a} vs {b}");
    }

    #[test]
    fn abrupt_shift_is_step_function() {
        let s = DriftSchedule::abrupt(4, 2, 0.5, 8);
        assert_eq!(s.at(0).placement, Placement::Shifted(vec![0.0; 4]));
        assert_eq!(s.at(7).placement, Placement::Shifted(vec![0.0; 4]));
        let after = match s.at(8).placement {
            Placement::Shifted(v) => v.iter().map(|x| x * x).sum::<f32>().sqrt(),
            _ => panic!("expected shifted placement"),
        };
        assert!((after - 0.5).abs() < 1e-5, "jump magnitude {after}");
        assert_eq!(s.at(8), s.at(9999), "post-jump shift must be constant");
    }

    #[test]
    fn adversarial_radius_sweeps_triangle() {
        let s = DriftSchedule::adversarial(vec![0.0; 3], 0.2, 1.0, 10);
        let radius = |op| match s.at(op).placement {
            Placement::Shell { radius, .. } => radius,
            _ => panic!("expected shell placement"),
        };
        assert!((radius(0) - 0.2).abs() < 1e-6);
        assert!((radius(5) - 1.0).abs() < 1e-6, "mid-period peak");
        assert!((radius(10) - 0.2).abs() < 1e-6, "period wraps");
        assert!(radius(2) < radius(4), "rising edge");
        assert!(radius(6) > radius(8), "falling edge");
    }

    #[test]
    fn unit_direction_is_normalized_and_seeded() {
        let a = unit_direction(16, 7);
        let b = unit_direction(16, 7);
        let c = unit_direction(16, 8);
        assert_eq!(a, b, "same seed must give same direction");
        assert_ne!(a, c, "different seeds should differ");
        let norm = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
    }
}
