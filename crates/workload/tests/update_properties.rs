//! Property tests for the §5.4 update simulator: per-seed determinism,
//! size conservation, label finiteness over long streams, and bit-exact
//! snapshot/resume — the guarantees the drift gauntlet's reproducibility
//! rests on.

use proptest::prelude::*;
use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_data::Dataset;
use selnet_metric::DistanceKind;
use selnet_workload::{
    generate_workload, DriftSchedule, LabeledQuery, ThresholdScheme, UpdateOp, UpdateSimulator,
    WorkloadConfig,
};

const KIND: DistanceKind = DistanceKind::Euclidean;

fn fixture(seed: u64) -> (Dataset, Vec<LabeledQuery>) {
    let ds = fasttext_like(&GeneratorConfig::new(150, 4, 3, seed));
    let cfg = WorkloadConfig {
        num_queries: 8,
        thresholds_per_query: 5,
        kind: KIND,
        scheme: ThresholdScheme::GeometricSelectivity,
        seed: seed ^ 0x9e37,
        threads: 1,
    };
    let w = generate_workload(&ds, &cfg);
    (ds, w.train)
}

/// Runs `steps` ops under a gradual schedule, returning the applied ops.
fn drive(
    sim: &mut UpdateSimulator,
    ds: &mut Dataset,
    queries: &mut [LabeledQuery],
    schedule: &DriftSchedule,
    start_op: usize,
    steps: usize,
) -> Vec<UpdateOp> {
    let mut ops = Vec::with_capacity(steps);
    for op in start_op..start_op + steps {
        let spec = schedule.at(op);
        let mut splits: Vec<&mut [LabeledQuery]> = vec![&mut *queries];
        ops.push(sim.step_drifted(ds, &mut splits, KIND, &spec));
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two simulators with the same seed produce identical op streams,
    /// datasets, and labels — regardless of what the seed is.
    #[test]
    fn same_seed_same_stream(seed in 0u64..1_000_000, steps in 5usize..25) {
        let schedule = DriftSchedule::gradual(4, seed ^ 7, 0.01);
        let (ds0, qs0) = fixture(3);
        let (mut ds_a, mut qs_a) = (ds0.clone(), qs0.clone());
        let (mut ds_b, mut qs_b) = (ds0, qs0);
        let mut sim_a = UpdateSimulator::new(seed);
        let mut sim_b = UpdateSimulator::new(seed);
        let ops_a = drive(&mut sim_a, &mut ds_a, &mut qs_a, &schedule, 0, steps);
        let ops_b = drive(&mut sim_b, &mut ds_b, &mut qs_b, &schedule, 0, steps);
        prop_assert_eq!(ops_a, ops_b);
        prop_assert_eq!(ds_a.flat(), ds_b.flat());
        prop_assert_eq!(qs_a, qs_b);
        prop_assert_eq!(sim_a.rng_state(), sim_b.rng_state());
    }

    /// Dataset length always equals the initial length plus applied
    /// inserts minus applied deletes; an op never partially applies.
    #[test]
    fn op_stream_conserves_size(seed in 0u64..1_000_000, steps in 5usize..30) {
        let schedule = DriftSchedule::cyclical(4, seed ^ 3, 0.05, 10);
        let (mut ds, mut qs) = fixture(5);
        let initial = ds.len();
        let mut sim = UpdateSimulator::new(seed);
        let ops = drive(&mut sim, &mut ds, &mut qs, &schedule, 0, steps);
        let mut expected = initial as i64;
        for op in &ops {
            match op {
                UpdateOp::Insert(records) => {
                    prop_assert_eq!(records.len(), sim.batch);
                    expected += records.len() as i64;
                }
                UpdateOp::Delete(records) => {
                    prop_assert_eq!(records.len(), sim.batch);
                    expected -= records.len() as i64;
                }
            }
        }
        prop_assert_eq!(ds.len() as i64, expected);
    }

    /// Long drifted streams never produce a NaN/∞ record or label, and
    /// incremental labels never go negative.
    #[test]
    fn long_streams_stay_finite(seed in 0u64..1_000_000) {
        let schedule = DriftSchedule::abrupt(4, seed ^ 11, 0.5, 40);
        let (mut ds, mut qs) = fixture(7);
        let mut sim = UpdateSimulator::new(seed);
        drive(&mut sim, &mut ds, &mut qs, &schedule, 0, 80);
        prop_assert!(ds.flat().iter().all(|v| v.is_finite()));
        for q in &qs {
            for &y in &q.selectivities {
                prop_assert!(y.is_finite() && y >= 0.0, "bad label {}", y);
            }
        }
    }

    /// Snapshot mid-stream, keep going; a simulator restored from the
    /// snapshot replays the remainder bit-for-bit (ops, dataset, labels).
    #[test]
    fn snapshot_resume_replays_exactly(
        seed in 0u64..1_000_000,
        prefix in 3usize..15,
        suffix in 3usize..15,
    ) {
        let schedule = DriftSchedule::gradual(4, seed ^ 5, 0.02);
        let (mut ds, mut qs) = fixture(9);
        let mut sim = UpdateSimulator::new(seed);
        drive(&mut sim, &mut ds, &mut qs, &schedule, 0, prefix);

        let snap = sim.snapshot();
        let (ds_at_snap, qs_at_snap) = (ds.clone(), qs.clone());

        let ops_live = drive(&mut sim, &mut ds, &mut qs, &schedule, prefix, suffix);

        let mut resumed = UpdateSimulator::restore(&snap);
        let (mut ds_r, mut qs_r) = (ds_at_snap, qs_at_snap);
        let ops_resumed = drive(&mut resumed, &mut ds_r, &mut qs_r, &schedule, prefix, suffix);

        prop_assert_eq!(ops_live, ops_resumed);
        prop_assert_eq!(ds.flat(), ds_r.flat());
        prop_assert_eq!(qs, qs_r);
        prop_assert_eq!(sim.rng_state(), resumed.rng_state());
    }
}

/// The snapshot round-trips through its public fields (a gauntlet can
/// persist it as four u64s plus the knobs).
#[test]
fn snapshot_fields_round_trip() {
    let mut sim = UpdateSimulator::new(42);
    sim.batch = 7;
    sim.insert_prob = 0.8;
    sim.noise = 0.1;
    let snap = sim.snapshot();
    assert_eq!(snap.batch, 7);
    assert_eq!(snap.insert_prob, 0.8);
    assert_eq!(snap.noise, 0.1);
    assert_eq!(snap.rng_state, sim.rng_state());
    let restored = UpdateSimulator::restore(&snap);
    assert_eq!(restored.snapshot(), snap);
}
