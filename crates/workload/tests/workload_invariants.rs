//! Additional invariant tests for workload generation: determinism across
//! thread counts, split disjointness, and ladder coverage.

use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_metric::DistanceKind;
use selnet_workload::{
    generate_workload, selectivity_ladder, sorted_distances, ThresholdScheme, WorkloadConfig,
};

fn cfg(threads: usize) -> WorkloadConfig {
    WorkloadConfig {
        num_queries: 24,
        thresholds_per_query: 9,
        kind: DistanceKind::Euclidean,
        scheme: ThresholdScheme::GeometricSelectivity,
        seed: 77,
        threads,
    }
}

#[test]
fn labeling_is_thread_count_invariant() {
    let ds = fasttext_like(&GeneratorConfig::new(600, 5, 4, 31));
    let w1 = generate_workload(&ds, &cfg(1));
    let w8 = generate_workload(&ds, &cfg(8));
    assert_eq!(w1.train, w8.train);
    assert_eq!(w1.valid, w8.valid);
    assert_eq!(w1.test, w8.test);
    assert_eq!(w1.tmax, w8.tmax);
}

#[test]
fn splits_are_disjoint_by_query() {
    let ds = fasttext_like(&GeneratorConfig::new(600, 5, 4, 32));
    let w = generate_workload(&ds, &cfg(4));
    let mut seen: Vec<&[f32]> = Vec::new();
    for q in w.train.iter().chain(&w.valid).chain(&w.test) {
        assert!(
            !seen.contains(&q.x.as_slice()),
            "query appears in two splits"
        );
        seen.push(&q.x);
    }
    assert_eq!(seen.len(), 24);
}

#[test]
fn ladder_rungs_monotone_and_within_range() {
    for (n, w) in [(1000usize, 5usize), (50_000, 40), (200, 2)] {
        let ladder = selectivity_ladder(n, w);
        assert_eq!(ladder.len(), w);
        assert!(ladder.windows(2).all(|p| p[0] <= p[1]));
        assert!(ladder[0] >= 1.0 - 1e-9);
        assert!(*ladder.last().unwrap() <= (n as f64 / 100.0).max(2.0) + 1e-9);
    }
}

#[test]
fn sorted_distances_include_self_zero() {
    let ds = fasttext_like(&GeneratorConfig::new(100, 4, 3, 33));
    // query is a database point -> smallest distance is 0
    let sorted = sorted_distances(&ds, ds.row(17), DistanceKind::Euclidean);
    assert_eq!(sorted.len(), 100);
    assert!(sorted[0].abs() < 1e-6);
    assert!(sorted.windows(2).all(|p| p[0] <= p[1]));
}

#[test]
fn tmax_covers_every_generated_threshold() {
    let ds = fasttext_like(&GeneratorConfig::new(800, 6, 4, 34));
    let w = generate_workload(&ds, &cfg(0));
    for q in w.train.iter().chain(&w.valid).chain(&w.test) {
        for &t in &q.thresholds {
            assert!(t <= w.tmax, "threshold {t} above tmax {}", w.tmax);
        }
    }
}
