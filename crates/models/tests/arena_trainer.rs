//! Regression pin for the arena-lifecycle port of the baseline trainers:
//! `train_minibatch` (one reused tape, in-place batch leaves, borrowed
//! gradients) must produce **bit-identical** parameters and validation
//! history to the old fresh-`Graph`-per-batch loop, reimplemented here as
//! the reference.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_models::common::{batch, flatten, from_log, train_minibatch, NeuralConfig, TEmbedding};
use selnet_tensor::{Activation, Adam, Graph, Matrix, Mlp, Optimizer, ParamStore};
use selnet_workload::LabeledQuery;

fn fixture_queries() -> Vec<LabeledQuery> {
    // deterministic synthetic workload: three query objects, labels a
    // smooth function of (x, t)
    (0..3)
        .map(|qi| {
            let x: Vec<f32> = (0..4).map(|d| ((qi * 4 + d) as f32 * 0.37).sin()).collect();
            let thresholds: Vec<f32> = (1..=8).map(|i| i as f32 * 0.25).collect();
            let selectivities: Vec<f64> = thresholds
                .iter()
                .map(|&t| (20.0 * t as f64 + 3.0 * qi as f64).max(1.0))
                .collect();
            LabeledQuery {
                x,
                thresholds,
                selectivities,
            }
        })
        .collect()
}

fn build_nets(cfg: &NeuralConfig, dim: usize) -> (ParamStore, TEmbedding, Mlp) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let emb = TEmbedding::new(&mut store, "t", cfg.t_embed, &mut rng);
    let net = Mlp::new(
        &mut store,
        "net",
        &[dim + cfg.t_embed, 16, 1],
        Activation::Relu,
        Activation::Linear,
        &mut rng,
    );
    (store, emb, net)
}

fn predict(
    emb: &TEmbedding,
    net: &Mlp,
    log_eps: f32,
    store: &ParamStore,
    x: &[f32],
    ts: &[f32],
) -> Vec<f64> {
    let mut g = Graph::new();
    let mut xr = Matrix::zeros(ts.len(), x.len());
    for i in 0..ts.len() {
        xr.row_mut(i).copy_from_slice(x);
    }
    let xv = g.leaf(xr);
    let tv = g.leaf(Matrix::col_vector(ts));
    let te = emb.forward(&mut g, store, tv);
    let input = g.concat_cols(xv, te);
    let out = net.forward(&mut g, store, input);
    g.value(out)
        .data()
        .iter()
        .map(|&z| from_log(z as f64, log_eps))
        .collect()
}

/// The seed trainer, verbatim: a fresh `Graph` per batch, allocated batch
/// matrices, cloned gradients, owned-gradient optimizer steps.
#[allow(clippy::too_many_arguments)]
fn reference_train(
    store: &mut ParamStore,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    cfg: &NeuralConfig,
    dim: usize,
    emb: &TEmbedding,
    net: &Mlp,
) -> Vec<f64> {
    let pairs = flatten(train, cfg.log_eps);
    let n = pairs.t.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ea1);
    let mut opt = Adam::new(cfg.learning_rate).with_clip(1.0);
    let mut best_mae = f64::MAX;
    let mut best_store = store.clone();
    let mut history = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let (x, t, ylog) = batch(&pairs, chunk, dim);
            let mut g = Graph::new();
            let xv = g.leaf(x);
            let tv = g.leaf(t);
            let yv = g.leaf(ylog);
            let te = emb.forward(&mut g, store, tv);
            let input = g.concat_cols(xv, te);
            let pred = net.forward(&mut g, store, input);
            let r = g.sub(pred, yv);
            let h = g.huber(r, cfg.huber_delta);
            let loss = g.mean(h);
            g.backward(loss);
            let grads = g.param_grads();
            opt.step(store, &grads);
        }
        let mut abs = 0.0f64;
        let mut cnt = 0usize;
        for q in valid {
            let preds = predict(emb, net, cfg.log_eps, store, &q.x, &q.thresholds);
            for (p, &y) in preds.iter().zip(&q.selectivities) {
                abs += (p - y).abs();
                cnt += 1;
            }
        }
        let mae = abs / cnt.max(1) as f64;
        history.push(mae);
        if mae < best_mae {
            best_mae = mae;
            best_store = store.clone();
        }
    }
    if best_mae.is_finite() && best_mae < f64::MAX {
        store.copy_from(&best_store);
    }
    history
}

#[test]
fn arena_trainer_is_bit_identical_to_fresh_graph_trainer() {
    let queries = fixture_queries();
    let cfg = NeuralConfig {
        epochs: 6,
        batch_size: 5,
        ..NeuralConfig::tiny()
    };
    let dim = 4;

    // arena path (the shipped trainer)
    let (mut store_a, emb_a, net_a) = build_nets(&cfg, dim);
    let (emb_f, net_f) = (emb_a.clone(), net_a.clone());
    let (emb_p, net_p) = (emb_a.clone(), net_a.clone());
    let log_eps = cfg.log_eps;
    let hist_a = train_minibatch(
        &mut store_a,
        &queries,
        &queries,
        &cfg,
        dim,
        move |g, s, x, t| {
            let te = emb_f.forward(g, s, t);
            let input = g.concat_cols(x, te);
            (net_f.forward(g, s, input), true)
        },
        move |s, x, ts| predict(&emb_p, &net_p, log_eps, s, x, ts),
        |_| {},
    );

    // reference path (fresh graph per batch)
    let (mut store_b, emb_b, net_b) = build_nets(&cfg, dim);
    let hist_b = reference_train(&mut store_b, &queries, &queries, &cfg, dim, &emb_b, &net_b);

    assert_eq!(
        hist_a, hist_b,
        "validation histories must match bit for bit"
    );
    assert_eq!(store_a.len(), store_b.len());
    for id in store_a.ids() {
        assert_eq!(
            store_a.value(id).data(),
            store_b.value(id).data(),
            "parameter {} diverged between arena and fresh-graph training",
            store_a.name(id)
        );
    }
}
