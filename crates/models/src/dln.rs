//! Deep Lattice Network (the DLN baseline, You et al., NIPS'17).
//!
//! Six layers as in the paper's Appendix B.2: calibrators → linear
//! embedding → calibrators → ensemble of lattices → calibrators → linear
//! embedding. Monotonicity in `t` is enforced structurally:
//!
//! * the `t` calibrator uses softmax increments + prefix sum (monotone ↑);
//! * embedding weights leaving the `t` channel are softplus-reparameterized
//!   (non-negative);
//! * intermediate calibrators are monotone ↑;
//! * lattice vertex parameters are projected after every optimizer step so
//!   each lattice is monotone in every input (the standard lattice
//!   monotonicity projection);
//! * the output layer's weights are softplus-reparameterized.
//!
//! The model predicts `log(y + ε)`; a monotone log-prediction implies a
//! monotone (consistent) selectivity estimate. Note the keypoints of every
//! calibrator are *fixed and evenly spaced* — exactly the inflexibility the
//! paper's §6.2 analysis (and our Figure 3 reproduction) exposes.

use crate::common::{from_log, train_minibatch, NeuralConfig};
use crate::dnn::replicate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_tensor::{init, Graph, Matrix, ParamId, ParamStore, Var};
use selnet_workload::Workload;

/// DLN hyper-parameters.
#[derive(Clone, Debug)]
pub struct DlnConfig {
    /// Shared neural settings (`hidden` is unused; DLN has its own shape).
    pub base: NeuralConfig,
    /// Keypoints per calibrator.
    pub keypoints: usize,
    /// Embedding width (number of lattice input channels).
    pub embed: usize,
    /// Number of lattices in the ensemble.
    pub lattices: usize,
    /// Inputs per lattice (2^m parameters each).
    pub lattice_dim: usize,
}

impl Default for DlnConfig {
    fn default() -> Self {
        DlnConfig {
            base: NeuralConfig::default(),
            keypoints: 8,
            embed: 6,
            lattices: 4,
            lattice_dim: 3,
        }
    }
}

impl DlnConfig {
    /// Small fast configuration for tests.
    pub fn tiny() -> Self {
        DlnConfig {
            base: NeuralConfig::tiny(),
            keypoints: 6,
            embed: 4,
            lattices: 2,
            lattice_dim: 2,
        }
    }
}

/// A bank of 1-D piece-wise-linear calibrators with fixed, evenly spaced
/// keypoints and a per-dimension monotonicity flag.
#[derive(Clone, Debug)]
struct CalibratorBank {
    /// Raw parameters, `1 x (dims * keypoints)`.
    raw: ParamId,
    /// Fixed keypoints, `dims * keypoints` flattened.
    keypoints: Vec<f32>,
    dims: usize,
    k: usize,
    /// Monotone dims map through softmax increments + prefix sum.
    monotone: Vec<bool>,
}

impl CalibratorBank {
    fn new(
        store: &mut ParamStore,
        name: &str,
        ranges: &[(f32, f32)],
        k: usize,
        monotone: Vec<bool>,
        rng: &mut impl Rng,
    ) -> Self {
        let dims = ranges.len();
        assert_eq!(monotone.len(), dims, "one monotone flag per dim");
        assert!(k >= 2, "need at least two keypoints");
        let raw = store.add(name.to_string(), init::normal(1, dims * k, 0.3, rng));
        let mut keypoints = Vec::with_capacity(dims * k);
        for &(lo, hi) in ranges {
            let span = (hi - lo).max(1e-6);
            for i in 0..k {
                keypoints.push(lo + span * i as f32 / (k - 1) as f32);
            }
        }
        CalibratorBank {
            raw,
            keypoints,
            dims,
            k,
            monotone,
        }
    }

    /// Calibrates all dims of `inputs` (`R x dims`); returns `R x dims`.
    fn calibrate_all(&self, g: &mut Graph, store: &ParamStore, inputs: Var) -> Var {
        let raw = store.inject(g, self.raw);
        let mut out: Option<Var> = None;
        for d in 0..self.dims {
            let slice = g.slice_cols(raw, d * self.k, (d + 1) * self.k);
            let p = if self.monotone[d] {
                let inc = g.softmax_rows(slice);
                g.cumsum_cols(inc)
            } else {
                g.sigmoid(slice)
            };
            let tau = g.leaf(Matrix::row_vector(
                &self.keypoints[d * self.k..(d + 1) * self.k],
            ));
            let col = g.slice_cols(inputs, d, d + 1);
            let c = g.pwl_interp(tau, p, col);
            out = Some(match out {
                Some(acc) => g.concat_cols(acc, c),
                None => c,
            });
        }
        out.expect("dims > 0")
    }
}

/// Projects a lattice parameter vector (`1 x 2^m`) to be monotone
/// non-decreasing along every dimension: sweeps all axis-aligned vertex
/// pairs, averaging violators, until a fixpoint (or 32 sweeps).
pub fn project_lattice_monotone(params: &mut [f32], m: usize) {
    let size = 1usize << m;
    assert_eq!(params.len(), size, "params must have 2^m entries");
    for _ in 0..32 {
        let mut changed = false;
        for j in 0..m {
            let bit = 1usize << j;
            for v in 0..size {
                if v & bit == 0 {
                    let hi = v | bit;
                    if params[v] > params[hi] {
                        let avg = 0.5 * (params[v] + params[hi]);
                        params[v] = avg;
                        params[hi] = avg;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// A trained DLN estimator.
pub struct DlnEstimator {
    store: ParamStore,
    arch: DlnArch,
    log_eps: f32,
    name: String,
}

/// The architecture (parameter ids + shapes), separable from the store so
/// the training closures can share it.
#[derive(Clone)]
struct DlnArch {
    input_cal: CalibratorBank,
    embed_w_free: ParamId,
    embed_w_t: ParamId,
    embed_b: ParamId,
    mid_cal: CalibratorBank,
    lattice_params: Vec<ParamId>,
    lattice_inputs: Vec<Vec<usize>>,
    out_cal: CalibratorBank,
    out_w: ParamId,
    out_b: ParamId,
    dim: usize,
}

impl DlnArch {
    fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var, t: Var) -> Var {
        // layer 1: calibrate [x; t] (x dims free, t monotone)
        let input = g.concat_cols(x, t);
        let calibrated = self.input_cal.calibrate_all(g, store, input);
        let xc = g.slice_cols(calibrated, 0, self.dim);
        let tc = g.slice_cols(calibrated, self.dim, self.dim + 1);
        // layer 2: linear embedding; the t channel has non-negative weights
        let wf = store.inject(g, self.embed_w_free);
        let wt_raw = store.inject(g, self.embed_w_t);
        let wt = g.softplus(wt_raw);
        let b = store.inject(g, self.embed_b);
        let xe = g.matmul(xc, wf);
        let te = g.matmul(tc, wt);
        let sum = g.add(xe, te);
        let emb = g.add_row_vec(sum, b);
        let emb01 = g.sigmoid(emb); // squash into the calibrator domain
                                    // layer 3: monotone calibrators per embedding channel
        let cal3 = self.mid_cal.calibrate_all(g, store, emb01);
        // layer 4: lattice ensemble
        let mut lat_out: Option<Var> = None;
        for (pid, dims) in self.lattice_params.iter().zip(&self.lattice_inputs) {
            let mut cols: Option<Var> = None;
            for &d in dims {
                let c = g.slice_cols(cal3, d, d + 1);
                cols = Some(match cols {
                    Some(acc) => g.concat_cols(acc, c),
                    None => c,
                });
            }
            let input = cols.expect("lattice has inputs");
            let params = store.inject(g, *pid);
            let o = g.lattice(input, params);
            lat_out = Some(match lat_out {
                Some(acc) => g.concat_cols(acc, o),
                None => o,
            });
        }
        let lat = lat_out.expect("at least one lattice");
        // layer 5: monotone calibrators on (squashed) lattice outputs
        let lat01 = g.sigmoid(lat);
        let cal5 = self.out_cal.calibrate_all(g, store, lat01);
        // layer 6: linear output with non-negative weights
        let ow_raw = store.inject(g, self.out_w);
        let ow = g.softplus(ow_raw);
        let ob = store.inject(g, self.out_b);
        let z = g.matmul(cal5, ow);
        g.add_row_vec(z, ob)
    }
}

impl DlnEstimator {
    /// Trains the DLN on a workload.
    pub fn fit(ds: &Dataset, workload: &Workload, cfg: &DlnConfig) -> Self {
        let dim = ds.dim();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let mut store = ParamStore::new();

        // feature ranges for the input calibrators
        let stats = selnet_data::stats::column_stats(ds);
        let mut ranges: Vec<(f32, f32)> = stats
            .mean
            .iter()
            .zip(&stats.std)
            .map(|(&m, &s)| (m - 3.0 * s, m + 3.0 * s))
            .collect();
        ranges.push((0.0, workload.tmax));
        let mut monotone = vec![false; dim];
        monotone.push(true); // t is the last dim
        let input_cal = CalibratorBank::new(
            &mut store,
            "cal1",
            &ranges,
            cfg.keypoints,
            monotone,
            &mut rng,
        );

        let embed_w_free = store.add("embed.wf", init::xavier(dim, cfg.embed, &mut rng));
        let embed_w_t = store.add("embed.wt", init::normal(1, cfg.embed, 0.5, &mut rng));
        let embed_b = store.add("embed.b", Matrix::zeros(1, cfg.embed));

        let mid_ranges = vec![(0.0f32, 1.0f32); cfg.embed];
        let mid_cal = CalibratorBank::new(
            &mut store,
            "cal3",
            &mid_ranges,
            cfg.keypoints,
            vec![true; cfg.embed],
            &mut rng,
        );

        let m = cfg.lattice_dim.min(cfg.embed).max(1);
        let lattice_params: Vec<ParamId> = (0..cfg.lattices.max(1))
            .map(|i| {
                let mut p = init::normal(1, 1 << m, 0.3, &mut rng);
                project_lattice_monotone(p.data_mut(), m);
                store.add(format!("lattice{i}"), p)
            })
            .collect();
        let lattice_inputs: Vec<Vec<usize>> = (0..cfg.lattices.max(1))
            .map(|i| (0..m).map(|j| (i * m + j) % cfg.embed).collect())
            .collect();

        let out_ranges = vec![(0.0f32, 1.0f32); cfg.lattices.max(1)];
        let out_cal = CalibratorBank::new(
            &mut store,
            "cal5",
            &out_ranges,
            cfg.keypoints,
            vec![true; cfg.lattices.max(1)],
            &mut rng,
        );
        let out_w = store.add("out.w", init::normal(cfg.lattices.max(1), 1, 0.5, &mut rng));
        let out_b = store.add("out.b", Matrix::zeros(1, 1));

        let arch = DlnArch {
            input_cal,
            embed_w_free,
            embed_w_t,
            embed_b,
            mid_cal,
            lattice_params: lattice_params.clone(),
            lattice_inputs,
            out_cal,
            out_w,
            out_b,
            dim,
        };

        let log_eps = cfg.base.log_eps;
        let arch_f = arch.clone();
        let arch_p = arch.clone();
        let lat_ids = lattice_params;
        let lat_m = m;
        train_minibatch(
            &mut store,
            &workload.train,
            &workload.valid,
            &cfg.base,
            dim,
            move |g, s, x, t| (arch_f.forward(g, s, x, t), true),
            move |s, x, ts| {
                let mut g = Graph::new();
                let xv = g.leaf(replicate(x, ts.len()));
                let tv = g.leaf(Matrix::col_vector(ts));
                let out = arch_p.forward(&mut g, s, xv, tv);
                g.value(out)
                    .data()
                    .iter()
                    .map(|&z| from_log(z as f64, log_eps))
                    .collect()
            },
            move |s| {
                for &pid in &lat_ids {
                    let p = s.value_mut(pid);
                    project_lattice_monotone(p.data_mut(), lat_m);
                }
            },
        );
        DlnEstimator {
            store,
            arch,
            log_eps,
            name: "DLN".into(),
        }
    }
}

impl SelectivityEstimator for DlnEstimator {
    fn estimate(&self, x: &[f32], t: f32) -> f64 {
        self.estimate_many(x, &[t])[0]
    }

    fn estimate_many(&self, x: &[f32], ts: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.arch.dim, "dimension mismatch");
        let mut g = Graph::new();
        let xv = g.leaf(replicate(x, ts.len()));
        let tv = g.leaf(Matrix::col_vector(ts));
        let out = self.arch.forward(&mut g, &self.store, xv, tv);
        g.value(out)
            .data()
            .iter()
            .map(|&z| from_log(z as f64, self.log_eps))
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn guarantees_consistency(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_data::generators::{fasttext_like, GeneratorConfig};
    use selnet_eval::evaluate;
    use selnet_metric::DistanceKind;
    use selnet_workload::{generate_workload, WorkloadConfig};

    #[test]
    fn lattice_projection_makes_monotone() {
        let mut p = vec![3.0f32, 1.0, 0.5, 2.0, -1.0, 4.0, 0.0, 0.2];
        project_lattice_monotone(&mut p, 3);
        for j in 0..3usize {
            let bit = 1usize << j;
            for v in 0..8usize {
                if v & bit == 0 {
                    assert!(
                        p[v] <= p[v | bit] + 1e-6,
                        "dim {j}: p[{v}]={} > p[{}]={}",
                        p[v],
                        v | bit,
                        p[v | bit]
                    );
                }
            }
        }
    }

    #[test]
    fn projection_is_idempotent_on_monotone_input() {
        let mut p = vec![0.0f32, 1.0, 2.0, 3.0];
        let orig = p.clone();
        project_lattice_monotone(&mut p, 2);
        assert_eq!(p, orig);
    }

    #[test]
    fn dln_is_consistent_by_construction() {
        let ds = fasttext_like(&GeneratorConfig::new(800, 5, 3, 29));
        let mut wcfg = WorkloadConfig::new(40, DistanceKind::Euclidean, 11);
        wcfg.thresholds_per_query = 8;
        wcfg.threads = 4;
        let w = generate_workload(&ds, &wcfg);
        let mut cfg = DlnConfig::tiny();
        cfg.base.epochs = 6;
        let model = DlnEstimator::fit(&ds, &w, &cfg);
        let score = selnet_eval::empirical_monotonicity(&model, &w.test, 8, 60, w.tmax);
        assert_eq!(score, 100.0, "DLN must be monotone in t");
    }

    #[test]
    fn dln_trains_and_predicts_finite() {
        let ds = fasttext_like(&GeneratorConfig::new(600, 5, 3, 31));
        let mut wcfg = WorkloadConfig::new(30, DistanceKind::Euclidean, 13);
        wcfg.thresholds_per_query = 6;
        wcfg.threads = 2;
        let w = generate_workload(&ds, &wcfg);
        let mut cfg = DlnConfig::tiny();
        cfg.base.epochs = 5;
        let model = DlnEstimator::fit(&ds, &w, &cfg);
        let m = evaluate(&model, &w.test);
        assert!(m.mse.is_finite() && m.count > 0);
        assert!(model.guarantees_consistency());
    }
}
