//! # selnet-models
//!
//! The neural baselines of the paper's evaluation (§7.1), all built on the
//! `selnet-tensor` autodiff engine and trained with the same Huber-on-log
//! loss as SelNet (Appendix B.2):
//!
//! * [`dnn`] — vanilla deep regression (no consistency);
//! * [`moe`] — sparsely-gated Mixture of Experts (no consistency);
//! * [`rmi`] — Recursive Model Index, trained stage by stage (no
//!   consistency);
//! * [`dln`] — Deep Lattice Network (consistent by construction);
//! * [`umnn`] — Unconstrained Monotonic NN via Clenshaw–Curtis quadrature
//!   (consistent by construction).

#![warn(missing_docs)]

pub mod common;
pub mod dln;
pub mod dnn;
pub mod moe;
pub mod quadrature;
pub mod rmi;
pub mod umnn;

pub use common::NeuralConfig;
pub use dln::{DlnConfig, DlnEstimator};
pub use dnn::DnnEstimator;
pub use moe::{MoeConfig, MoeEstimator};
pub use quadrature::{clenshaw_curtis, integrate_cc};
pub use rmi::{RmiConfig, RmiEstimator};
pub use umnn::{UmnnConfig, UmnnEstimator};
