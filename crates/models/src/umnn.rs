//! Unconstrained Monotonic Neural Network (the UMNN baseline, Wehenkel &
//! Louppe, NeurIPS'19).
//!
//! The estimator is the integral of a strictly positive integrand network:
//!
//! `f(x, t) = offset(x) + ∫_0^t ĝ(x, s) ds`,   `ĝ = elu(FFN([x; s])) + 1 > 0`
//!
//! evaluated with Clenshaw–Curtis quadrature (§6.3). Positivity of `ĝ`
//! makes `f` monotone in `t` by construction; the non-negative offset
//! models `f(x, 0) ≥ 1` (the query is itself a database point). As §6.3
//! points out, the quadrature nodes are the *same* for every query —
//! the inflexibility SelNet's query-dependent control points remove.

use crate::common::{train_minibatch, NeuralConfig};
use crate::dnn::replicate;
use crate::quadrature::clenshaw_curtis;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_tensor::{Activation, Graph, Matrix, Mlp, ParamStore, Var};
use selnet_workload::Workload;

/// UMNN hyper-parameters.
#[derive(Clone, Debug)]
pub struct UmnnConfig {
    /// Shared neural settings (`hidden` shapes the integrand FFN).
    pub base: NeuralConfig,
    /// Quadrature points = `nodes + 1`.
    pub nodes: usize,
    /// Hidden widths of the offset network.
    pub offset_hidden: Vec<usize>,
}

impl Default for UmnnConfig {
    fn default() -> Self {
        UmnnConfig {
            base: NeuralConfig::default(),
            nodes: 8,
            offset_hidden: vec![32],
        }
    }
}

impl UmnnConfig {
    /// Small fast configuration for tests.
    pub fn tiny() -> Self {
        UmnnConfig {
            base: NeuralConfig::tiny(),
            nodes: 6,
            offset_hidden: vec![8],
        }
    }
}

/// A trained UMNN estimator.
pub struct UmnnEstimator {
    store: ParamStore,
    arch: UmnnArch,
    name: String,
}

#[derive(Clone)]
struct UmnnArch {
    integrand: Mlp,
    offset: Mlp,
    /// CC node coefficients mapped to `[0, 1]`: `c_j = (ξ_j + 1) / 2`.
    node_coeff: Vec<f32>,
    /// CC weights already divided by 2 (the `t/2` Jacobian).
    half_weights: Vec<f32>,
    dim: usize,
}

impl UmnnArch {
    /// Records the forward pass; the output is the *raw* selectivity
    /// (non-negative, monotone in `t`).
    fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var, t: Var) -> Var {
        // integral: (t/2) Σ_j w_j ĝ(x, c_j t)
        let mut acc: Option<Var> = None;
        for (&c, &hw) in self.node_coeff.iter().zip(&self.half_weights) {
            let s = g.scale(t, c);
            let input = g.concat_cols(x, s);
            let raw = self.integrand.forward(g, store, input);
            let pos = g.elu_plus_one(raw);
            let weighted = g.scale(pos, hw);
            acc = Some(match acc {
                Some(prev) => g.add(prev, weighted),
                None => weighted,
            });
        }
        let weighted_sum = acc.expect("at least one node");
        let integral = g.mul(weighted_sum, t);
        // non-negative query-dependent offset: f(x, 0)
        let off_raw = self.offset.forward(g, store, x);
        let off = g.softplus(off_raw);
        g.add(integral, off)
    }
}

impl UmnnEstimator {
    /// Trains the UMNN on a workload.
    pub fn fit(ds: &Dataset, workload: &Workload, cfg: &UmnnConfig) -> Self {
        let dim = ds.dim();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let mut store = ParamStore::new();
        let mut widths = vec![dim + 1];
        widths.extend_from_slice(&cfg.base.hidden);
        widths.push(1);
        let integrand = Mlp::new(
            &mut store,
            "integrand",
            &widths,
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        let mut off_widths = vec![dim];
        off_widths.extend_from_slice(&cfg.offset_hidden);
        off_widths.push(1);
        let offset = Mlp::new(
            &mut store,
            "offset",
            &off_widths,
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        let (nodes, weights) = clenshaw_curtis(cfg.nodes.max(1));
        let arch = UmnnArch {
            integrand,
            offset,
            node_coeff: nodes.iter().map(|&xi| ((xi + 1.0) / 2.0) as f32).collect(),
            half_weights: weights.iter().map(|&w| (w / 2.0) as f32).collect(),
            dim,
        };

        let arch_f = arch.clone();
        let arch_p = arch.clone();
        train_minibatch(
            &mut store,
            &workload.train,
            &workload.valid,
            &cfg.base,
            dim,
            move |g, s, x, t| (arch_f.forward(g, s, x, t), false),
            move |s, x, ts| {
                let mut g = Graph::new();
                let xv = g.leaf(replicate(x, ts.len()));
                let tv = g.leaf(Matrix::col_vector(ts));
                let out = arch_p.forward(&mut g, s, xv, tv);
                g.value(out)
                    .data()
                    .iter()
                    .map(|&v| (v as f64).max(0.0))
                    .collect()
            },
            |_| {},
        );
        UmnnEstimator {
            store,
            arch,
            name: "UMNN".into(),
        }
    }
}

impl SelectivityEstimator for UmnnEstimator {
    fn estimate(&self, x: &[f32], t: f32) -> f64 {
        self.estimate_many(x, &[t])[0]
    }

    fn estimate_many(&self, x: &[f32], ts: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.arch.dim, "dimension mismatch");
        let mut g = Graph::new();
        let xv = g.leaf(replicate(x, ts.len()));
        let tv = g.leaf(Matrix::col_vector(ts));
        let out = self.arch.forward(&mut g, &self.store, xv, tv);
        g.value(out)
            .data()
            .iter()
            .map(|&v| (v as f64).max(0.0))
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn guarantees_consistency(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_data::generators::{fasttext_like, GeneratorConfig};
    use selnet_eval::evaluate;
    use selnet_metric::DistanceKind;
    use selnet_workload::{generate_workload, WorkloadConfig};

    #[test]
    fn untrained_umnn_is_already_monotone() {
        let ds = fasttext_like(&GeneratorConfig::new(200, 5, 3, 37));
        let mut wcfg = WorkloadConfig::new(10, DistanceKind::Euclidean, 15);
        wcfg.thresholds_per_query = 5;
        wcfg.threads = 2;
        let w = generate_workload(&ds, &wcfg);
        let mut cfg = UmnnConfig::tiny();
        cfg.base.epochs = 0; // untrained
        let model = UmnnEstimator::fit(&ds, &w, &cfg);
        let ts: Vec<f32> = (0..80).map(|i| w.tmax * i as f32 / 79.0).collect();
        let preds = model.estimate_many(ds.row(0), &ts);
        for pair in preds.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-5, "UMNN must be monotone: {pair:?}");
        }
    }

    #[test]
    fn umnn_trains_and_is_consistent() {
        let ds = fasttext_like(&GeneratorConfig::new(800, 5, 3, 41));
        let mut wcfg = WorkloadConfig::new(40, DistanceKind::Euclidean, 17);
        wcfg.thresholds_per_query = 8;
        wcfg.threads = 4;
        let w = generate_workload(&ds, &wcfg);
        let mut cfg = UmnnConfig::tiny();
        cfg.base.epochs = 8;
        let model = UmnnEstimator::fit(&ds, &w, &cfg);
        let m = evaluate(&model, &w.test);
        assert!(m.mse.is_finite() && m.count > 0);
        let score = selnet_eval::empirical_monotonicity(&model, &w.test, 8, 50, w.tmax);
        assert_eq!(score, 100.0);
    }

    #[test]
    fn prediction_at_zero_is_offset_only() {
        let ds = fasttext_like(&GeneratorConfig::new(300, 4, 2, 43));
        let mut wcfg = WorkloadConfig::new(10, DistanceKind::Euclidean, 19);
        wcfg.thresholds_per_query = 5;
        wcfg.threads = 2;
        let w = generate_workload(&ds, &wcfg);
        let mut cfg = UmnnConfig::tiny();
        cfg.base.epochs = 2;
        let model = UmnnEstimator::fit(&ds, &w, &cfg);
        // integral over [0, 0] vanishes; prediction = softplus(offset) >= 0
        let at_zero = model.estimate(ds.row(0), 0.0);
        assert!(at_zero >= 0.0);
    }
}
