//! Shared plumbing for the neural baselines: the learned threshold
//! embedding `t ↦ ReLU(w t)` (Appendix B.2 — "DNN, MoE and RMI cannot
//! directly handle the threshold t"), flattened training pairs, and a
//! generic mini-batch trainer with validation-based model selection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_tensor::{Adam, Graph, Matrix, Optimizer, ParamStore, Var};
use selnet_workload::LabeledQuery;

/// One arena-tape training step shared by the baseline trainers: reset the
/// tape, gather the batch leaves in place, record `forward`, apply the
/// Huber-on-(log-)residual loss, and feed Adam **borrowed** gradients.
/// After the first batch this performs no per-op matrix allocations (the
/// PR 3 tape lifecycle), and it is bit-identical to the old
/// fresh-`Graph`-per-batch step (pinned by `tests/arena_trainer.rs`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn arena_train_step(
    g: &mut Graph,
    store: &mut ParamStore,
    opt: &mut Adam,
    pairs: &Pairs<'_>,
    chunk: &[usize],
    dim: usize,
    cfg: &NeuralConfig,
    forward: &mut impl FnMut(&mut Graph, &ParamStore, Var, Var) -> (Var, bool),
) {
    g.reset();
    let (xv, tv, yv) = batch_leaves(g, pairs, chunk, dim);
    let (pred, is_log) = forward(g, store, xv, tv);
    let pred_log = if is_log {
        pred
    } else {
        g.ln_eps(pred, cfg.log_eps)
    };
    let r = g.sub(pred_log, yv);
    let h = g.huber(r, cfg.huber_delta);
    let loss = g.mean(h);
    g.backward(loss);
    let grads = g.param_grad_refs();
    opt.step_refs(store, &grads);
}

/// Hyper-parameters shared by the neural baselines.
#[derive(Clone, Debug)]
pub struct NeuralConfig {
    /// Hidden widths of the main FFN (paper: 512/512/512/256; scaled).
    pub hidden: Vec<usize>,
    /// Width of the learned threshold embedding.
    pub t_embed: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Huber δ.
    pub huber_delta: f32,
    /// Log padding ε.
    pub log_eps: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        NeuralConfig {
            hidden: vec![128, 128, 64],
            t_embed: 16,
            learning_rate: 1e-3,
            epochs: 40,
            batch_size: 256,
            huber_delta: 1.345,
            log_eps: 1.0,
            seed: 42,
        }
    }
}

impl NeuralConfig {
    /// A small fast configuration for tests.
    pub fn tiny() -> Self {
        NeuralConfig {
            hidden: vec![32, 16],
            t_embed: 8,
            epochs: 15,
            batch_size: 128,
            learning_rate: 3e-3,
            ..Default::default()
        }
    }
}

/// The learned threshold embedding `t ↦ ReLU(W t + b)`.
#[derive(Clone, Debug)]
pub struct TEmbedding {
    linear: selnet_tensor::Linear,
}

impl TEmbedding {
    /// Registers the embedding in `store`.
    pub fn new(store: &mut ParamStore, name: &str, width: usize, rng: &mut impl Rng) -> Self {
        TEmbedding {
            linear: selnet_tensor::Linear::new(store, name, 1, width, rng),
        }
    }

    /// Records the forward pass (`t` is an `R x 1` column).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, t: Var) -> Var {
        let h = self.linear.forward(g, store, t);
        g.relu(h)
    }
}

/// Flattened `(x, t, log(y+eps))` pairs.
pub struct Pairs<'a> {
    /// Query vectors (borrowed).
    pub x: Vec<&'a [f32]>,
    /// Thresholds.
    pub t: Vec<f32>,
    /// Log-space targets.
    pub ylog: Vec<f32>,
}

/// Flattens a split for training.
pub fn flatten<'a>(split: &'a [LabeledQuery], log_eps: f32) -> Pairs<'a> {
    let mut p = Pairs {
        x: Vec::new(),
        t: Vec::new(),
        ylog: Vec::new(),
    };
    for q in split {
        for (i, &t) in q.thresholds.iter().enumerate() {
            p.x.push(q.x.as_slice());
            p.t.push(t);
            p.ylog.push((q.selectivities[i] as f32 + log_eps).ln());
        }
    }
    p
}

/// Assembles batch matrices for the given pair indices (allocating; kept
/// for callers outside a training loop). Hot loops use
/// [`batch_leaves`], which gathers straight into a reused tape's recycled
/// buffers instead.
pub fn batch(pairs: &Pairs<'_>, order: &[usize], dim: usize) -> (Matrix, Matrix, Matrix) {
    let b = order.len();
    let mut xb = Vec::with_capacity(b * dim);
    let mut tb = Vec::with_capacity(b);
    let mut yb = Vec::with_capacity(b);
    for &i in order {
        xb.extend_from_slice(pairs.x[i]);
        tb.push(pairs.t[i]);
        yb.push(pairs.ylog[i]);
    }
    (
        Matrix::from_vec(b, dim, xb),
        Matrix::col_vector(&tb),
        Matrix::col_vector(&yb),
    )
}

/// Records the batch `(x, t, ylog)` leaves for the given pair indices
/// directly on a (reused) tape — the arena-lifecycle counterpart of
/// [`batch`]: once the tape is warm, batch assembly touches the allocator
/// not at all, and the leaf values are bit-identical to the allocating
/// path.
pub fn batch_leaves(
    g: &mut Graph,
    pairs: &Pairs<'_>,
    order: &[usize],
    dim: usize,
) -> (Var, Var, Var) {
    let b = order.len();
    let xv = g.leaf_with(b, dim, |data| {
        for (row, &i) in data.chunks_mut(dim.max(1)).zip(order) {
            row.copy_from_slice(pairs.x[i]);
        }
    });
    let tv = g.leaf_with(b, 1, |data| {
        for (o, &i) in data.iter_mut().zip(order) {
            *o = pairs.t[i];
        }
    });
    let yv = g.leaf_with(b, 1, |data| {
        for (o, &i) in data.iter_mut().zip(order) {
            *o = pairs.ylog[i];
        }
    });
    (xv, tv, yv)
}

/// Generic mini-batch trainer. `forward` records the model and returns the
/// prediction; `pred_is_log` says whether it is already in log space (else
/// `ln(max(·,0)+ε)` is applied before the Huber loss). `post_step` runs
/// after every optimizer step (parameter projections). `predict` maps
/// `(store, x, ts)` to selectivity predictions for validation. The
/// parameters with the smallest validation MAE are kept; returns the
/// per-epoch validation MAE history.
///
/// One arena tape is reused across every batch of every epoch
/// ([`Graph::reset`] keeps the buffers) and gradients reach Adam as
/// borrows — the PR 3 tape lifecycle, bit-identical to the old
/// fresh-`Graph`-per-batch loop (pinned by `tests/arena_trainer.rs`).
#[allow(clippy::too_many_arguments)]
pub fn train_minibatch(
    store: &mut ParamStore,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    cfg: &NeuralConfig,
    dim: usize,
    mut forward: impl FnMut(&mut Graph, &ParamStore, Var, Var) -> (Var, bool),
    predict: impl Fn(&ParamStore, &[f32], &[f32]) -> Vec<f64>,
    mut post_step: impl FnMut(&mut ParamStore),
) -> Vec<f64> {
    let pairs = flatten(train, cfg.log_eps);
    let n = pairs.t.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ea1);
    let mut opt = Adam::new(cfg.learning_rate).with_clip(1.0);
    let mut best_mae = f64::MAX;
    let mut best_store = store.clone();
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut g = Graph::new();

    for _ in 0..cfg.epochs {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            arena_train_step(
                &mut g,
                store,
                &mut opt,
                &pairs,
                chunk,
                dim,
                cfg,
                &mut forward,
            );
            post_step(store);
        }
        // validation MAE with current parameters
        let mut abs = 0.0f64;
        let mut cnt = 0usize;
        for q in valid {
            let preds = predict(store, &q.x, &q.thresholds);
            for (p, &y) in preds.iter().zip(&q.selectivities) {
                abs += (p - y).abs();
                cnt += 1;
            }
        }
        let mae = abs / cnt.max(1) as f64;
        history.push(mae);
        if mae < best_mae {
            best_mae = mae;
            best_store = store.clone();
        }
    }
    if best_mae.is_finite() && best_mae < f64::MAX {
        store.copy_from(&best_store);
    }
    history
}

/// Exponentiates a log-space prediction back to a selectivity.
pub fn from_log(z: f64, log_eps: f32) -> f64 {
    (z.min(60.0).exp() - log_eps as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_tensor::{Activation, Mlp};

    #[test]
    fn t_embedding_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = TEmbedding::new(&mut store, "t", 8, &mut rng);
        let mut g = Graph::new();
        let t = g.leaf(Matrix::col_vector(&[0.1, 0.2, 0.3]));
        let e = emb.forward(&mut g, &store, t);
        assert_eq!(g.value(e).shape(), (3, 8));
        assert!(g.value(e).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn trainer_fits_simple_log_model() {
        // one query, labels linear in t: y = 100 t; an MLP on [x, emb(t)]
        // trained in log space should get close
        let q = LabeledQuery {
            x: vec![0.5, -0.5],
            thresholds: (1..40).map(|i| i as f32 * 0.1).collect(),
            selectivities: (1..40).map(|i| (i as f64) * 10.0).collect(),
        };
        let train = vec![q.clone()];
        let valid = vec![q.clone()];
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = NeuralConfig {
            epochs: 250,
            learning_rate: 1e-2,
            ..NeuralConfig::tiny()
        };
        let emb = TEmbedding::new(&mut store, "t", cfg.t_embed, &mut rng);
        let net = Mlp::new(
            &mut store,
            "net",
            &[2 + cfg.t_embed, 32, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        let log_eps = cfg.log_eps;
        let emb2 = emb.clone();
        let net2 = net.clone();
        let history = train_minibatch(
            &mut store,
            &train,
            &valid,
            &cfg,
            2,
            |g, s, x, t| {
                let te = emb.forward(g, s, t);
                let input = g.concat_cols(x, te);
                (net.forward(g, s, input), true)
            },
            |s, x, ts| {
                let mut g = Graph::new();
                let xv = g.leaf(Matrix::row_vector(x));
                // broadcast x across thresholds
                let mut xr = Matrix::zeros(ts.len(), x.len());
                for i in 0..ts.len() {
                    xr.row_mut(i).copy_from_slice(g.value(xv).row(0));
                }
                let mut g = Graph::new();
                let xv = g.leaf(xr);
                let tv = g.leaf(Matrix::col_vector(ts));
                let te = emb2.forward(&mut g, s, tv);
                let input = g.concat_cols(xv, te);
                let out = net2.forward(&mut g, s, input);
                g.value(out)
                    .data()
                    .iter()
                    .map(|&z| from_log(z as f64, log_eps))
                    .collect()
            },
            |_| {},
        );
        let first = history[0];
        let last = history.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            last < first * 0.6,
            "training should substantially reduce val MAE: {first} -> {last}"
        );
    }
}
