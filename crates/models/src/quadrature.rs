//! Clenshaw–Curtis quadrature (the integration scheme behind UMNN, §6.3).
//!
//! Nodes are the Chebyshev points `ξ_j = cos(π j / N)`, `j = 0..N`; weights
//! come from the classic cosine-series formula. CC with `N+1` points
//! integrates polynomials of degree `N` exactly.

/// Clenshaw–Curtis nodes and weights on `[-1, 1]` for `n + 1` points.
pub fn clenshaw_curtis(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "need at least two points");
    let nodes: Vec<f64> = (0..=n)
        .map(|j| (std::f64::consts::PI * j as f64 / n as f64).cos())
        .collect();
    let mut weights = vec![0.0f64; n + 1];
    for (j, w) in weights.iter_mut().enumerate() {
        let c = if j == 0 || j == n { 1.0 } else { 2.0 };
        let mut sum = 1.0f64;
        for k in 1..=(n / 2) {
            let b = if 2 * k == n { 1.0 } else { 2.0 };
            sum -= b / ((4 * k * k - 1) as f64)
                * (2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64).cos();
        }
        *w = c * sum / n as f64;
    }
    (nodes, weights)
}

/// Integrates `f` over `[0, t]` with `n + 1` CC points.
pub fn integrate_cc(f: impl Fn(f64) -> f64, t: f64, n: usize) -> f64 {
    let (nodes, weights) = clenshaw_curtis(n);
    let half = t / 2.0;
    nodes
        .iter()
        .zip(&weights)
        .map(|(&xi, &w)| w * f(half * (xi + 1.0)))
        .sum::<f64>()
        * half
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_interval_length() {
        for n in [2usize, 4, 8, 16, 17] {
            let (_, w) = clenshaw_curtis(n);
            let sum: f64 = w.iter().sum();
            assert!((sum - 2.0).abs() < 1e-12, "n={n}: weight sum {sum}");
        }
    }

    #[test]
    fn integrates_polynomials_exactly() {
        // CC with N+1 points is exact for degree <= N
        let n = 8;
        // ∫_0^2 x^3 dx = 4
        let v = integrate_cc(|x| x * x * x, 2.0, n);
        assert!((v - 4.0).abs() < 1e-10, "{v}");
        // ∫_0^1 (5x^4 - 2x) dx = 1 - 1 = 0
        let v = integrate_cc(|x| 5.0 * x.powi(4) - 2.0 * x, 1.0, n);
        assert!(v.abs() < 1e-10, "{v}");
    }

    #[test]
    fn integrates_exponential_accurately() {
        // ∫_0^1 e^x dx = e - 1
        let v = integrate_cc(f64::exp, 1.0, 16);
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-9, "{v}");
    }

    #[test]
    fn zero_interval_is_zero() {
        assert_eq!(integrate_cc(|x| x + 1.0, 0.0, 8), 0.0);
    }
}
