//! Sparsely-gated Mixture of Experts (the MoE baseline, Shazeer et al.):
//! a gate picks the top-k experts per input; the output is the
//! gate-weighted sum of the selected experts' predictions (log space).

use crate::common::{from_log, train_minibatch, NeuralConfig, TEmbedding};
use crate::dnn::replicate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_tensor::{Activation, Graph, Linear, Matrix, Mlp, ParamStore, Var};
use selnet_workload::Workload;

/// MoE hyper-parameters.
#[derive(Clone, Debug)]
pub struct MoeConfig {
    /// Shared neural settings.
    pub base: NeuralConfig,
    /// Number of experts (paper: 30; scaled).
    pub num_experts: usize,
    /// Experts used per input (paper: 3; scaled).
    pub top_k: usize,
    /// Hidden widths of each expert.
    pub expert_hidden: Vec<usize>,
}

impl Default for MoeConfig {
    fn default() -> Self {
        MoeConfig {
            base: NeuralConfig::default(),
            num_experts: 8,
            top_k: 2,
            expert_hidden: vec![64, 32],
        }
    }
}

impl MoeConfig {
    /// Small fast configuration for tests.
    pub fn tiny() -> Self {
        MoeConfig {
            base: NeuralConfig::tiny(),
            num_experts: 4,
            top_k: 2,
            expert_hidden: vec![16],
        }
    }
}

/// A trained MoE estimator.
pub struct MoeEstimator {
    store: ParamStore,
    emb: TEmbedding,
    gate: Linear,
    experts: Vec<Mlp>,
    top_k: usize,
    dim: usize,
    log_eps: f32,
    name: String,
}

/// Builds the top-k mask (0 for selected logits, -1e30 otherwise) from the
/// gate logits' forward values — the sparse gating of Shazeer et al.
fn topk_mask(logits: &Matrix, k: usize) -> Matrix {
    let mut mask = Matrix::full(logits.rows(), logits.cols(), -1e30);
    for i in 0..logits.rows() {
        let row = logits.row(i);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_unstable_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite"));
        for &j in idx.iter().take(k.min(row.len())) {
            mask.set(i, j, 0.0);
        }
    }
    mask
}

#[allow(clippy::too_many_arguments)]
fn forward_moe(
    g: &mut Graph,
    store: &ParamStore,
    emb: &TEmbedding,
    gate: &Linear,
    experts: &[Mlp],
    top_k: usize,
    x: Var,
    t: Var,
) -> Var {
    let te = emb.forward(g, store, t);
    let input = g.concat_cols(x, te);
    let logits = gate.forward(g, store, input);
    let mask = g.leaf(topk_mask(g.value(logits), top_k));
    let masked = g.add(logits, mask);
    let gates = g.softmax_rows(masked);
    // all experts evaluated; unselected ones receive ~0 weight
    let mut outs: Option<Var> = None;
    for e in experts {
        let o = e.forward(g, store, input);
        outs = Some(match outs {
            Some(acc) => g.concat_cols(acc, o),
            None => o,
        });
    }
    let outs = outs.expect("at least one expert");
    let weighted = g.mul(gates, outs);
    g.row_sum(weighted)
}

impl MoeEstimator {
    /// Trains the MoE on a workload.
    pub fn fit(ds: &Dataset, workload: &Workload, cfg: &MoeConfig) -> Self {
        let dim = ds.dim();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let mut store = ParamStore::new();
        let emb = TEmbedding::new(&mut store, "temb", cfg.base.t_embed, &mut rng);
        let in_dim = dim + cfg.base.t_embed;
        let gate = Linear::new(&mut store, "gate", in_dim, cfg.num_experts, &mut rng);
        let experts: Vec<Mlp> = (0..cfg.num_experts)
            .map(|i| {
                let mut widths = vec![in_dim];
                widths.extend_from_slice(&cfg.expert_hidden);
                widths.push(1);
                Mlp::new(
                    &mut store,
                    &format!("expert{i}"),
                    &widths,
                    Activation::Relu,
                    Activation::Linear,
                    &mut rng,
                )
            })
            .collect();

        let log_eps = cfg.base.log_eps;
        let (emb_f, gate_f, experts_f) = (emb.clone(), gate.clone(), experts.clone());
        let (emb_p, gate_p, experts_p) = (emb.clone(), gate.clone(), experts.clone());
        let k = cfg.top_k;
        train_minibatch(
            &mut store,
            &workload.train,
            &workload.valid,
            &cfg.base,
            dim,
            move |g, s, x, t| {
                (
                    forward_moe(g, s, &emb_f, &gate_f, &experts_f, k, x, t),
                    true,
                )
            },
            move |s, x, ts| {
                let mut g = Graph::new();
                let xv = g.leaf(replicate(x, ts.len()));
                let tv = g.leaf(Matrix::col_vector(ts));
                let out = forward_moe(&mut g, s, &emb_p, &gate_p, &experts_p, k, xv, tv);
                g.value(out)
                    .data()
                    .iter()
                    .map(|&z| from_log(z as f64, log_eps))
                    .collect()
            },
            |_| {},
        );
        MoeEstimator {
            store,
            emb,
            gate,
            experts,
            top_k: cfg.top_k,
            dim,
            log_eps,
            name: "MoE".into(),
        }
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }
}

impl SelectivityEstimator for MoeEstimator {
    fn estimate(&self, x: &[f32], t: f32) -> f64 {
        self.estimate_many(x, &[t])[0]
    }

    fn estimate_many(&self, x: &[f32], ts: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let mut g = Graph::new();
        let xv = g.leaf(replicate(x, ts.len()));
        let tv = g.leaf(Matrix::col_vector(ts));
        let out = forward_moe(
            &mut g,
            &self.store,
            &self.emb,
            &self.gate,
            &self.experts,
            self.top_k,
            xv,
            tv,
        );
        g.value(out)
            .data()
            .iter()
            .map(|&z| from_log(z as f64, self.log_eps))
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_data::generators::{fasttext_like, GeneratorConfig};
    use selnet_eval::evaluate;
    use selnet_metric::DistanceKind;
    use selnet_workload::{generate_workload, WorkloadConfig};

    #[test]
    fn topk_mask_keeps_exactly_k() {
        let logits = Matrix::from_vec(2, 4, vec![0.1, 3.0, -1.0, 2.0, 5.0, 0.0, 1.0, 2.0]);
        let mask = topk_mask(&logits, 2);
        for i in 0..2 {
            let kept = mask.row(i).iter().filter(|&&v| v == 0.0).count();
            assert_eq!(kept, 2);
        }
        // row 0: top-2 are logits 3.0 (idx 1) and 2.0 (idx 3)
        assert_eq!(mask.get(0, 1), 0.0);
        assert_eq!(mask.get(0, 3), 0.0);
    }

    #[test]
    fn moe_trains_and_predicts() {
        let ds = fasttext_like(&GeneratorConfig::new(1000, 6, 4, 13));
        let mut wcfg = WorkloadConfig::new(50, DistanceKind::Euclidean, 5);
        wcfg.thresholds_per_query = 8;
        wcfg.threads = 4;
        let w = generate_workload(&ds, &wcfg);
        let model = MoeEstimator::fit(&ds, &w, &MoeConfig::tiny());
        assert_eq!(model.num_experts(), 4);
        let m = evaluate(&model, &w.test);
        assert!(m.mse.is_finite() && m.count > 0);
        assert!(model.estimate(ds.row(0), 0.5) >= 0.0);
    }
}
