//! Recursive Model Index (the RMI baseline, Kraska et al.): a hierarchy of
//! small FFNs trained stage by stage. Each stage's prediction routes the
//! input to one model of the next stage; the leaf model's prediction is the
//! answer. Trained in log space like the other regressors.

use crate::common::{flatten, from_log, NeuralConfig, TEmbedding};
use crate::dnn::replicate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_tensor::{Activation, Adam, Graph, Matrix, Mlp, Optimizer, ParamStore};
use selnet_workload::Workload;

/// RMI hyper-parameters.
#[derive(Clone, Debug)]
pub struct RmiConfig {
    /// Shared neural settings.
    pub base: NeuralConfig,
    /// Models per stage (paper: `[1, 4, 8]`).
    pub stage_sizes: Vec<usize>,
}

impl Default for RmiConfig {
    fn default() -> Self {
        RmiConfig {
            base: NeuralConfig::default(),
            stage_sizes: vec![1, 4, 8],
        }
    }
}

impl RmiConfig {
    /// Small fast configuration for tests.
    pub fn tiny() -> Self {
        RmiConfig {
            base: NeuralConfig::tiny(),
            stage_sizes: vec![1, 2, 4],
        }
    }
}

/// A trained RMI estimator.
pub struct RmiEstimator {
    store: ParamStore,
    emb: TEmbedding,
    stages: Vec<Vec<Mlp>>,
    /// Log-space label range used for routing.
    zmin: f32,
    zmax: f32,
    dim: usize,
    log_eps: f32,
    name: String,
}

impl RmiEstimator {
    fn route(&self, z: f32, next_size: usize) -> usize {
        let span = (self.zmax - self.zmin).max(1e-6);
        let frac = ((z - self.zmin) / span).clamp(0.0, 1.0);
        ((frac * next_size as f32) as usize).min(next_size - 1)
    }

    fn forward_one(&self, store: &ParamStore, x: &[f32], t: f32) -> f32 {
        let mut g = Graph::new();
        let xv = g.leaf(Matrix::row_vector(x));
        let tv = g.leaf(Matrix::full(1, 1, t));
        let te = self.emb.forward(&mut g, store, tv);
        let input = g.concat_cols(xv, te);
        let mut idx = 0usize;
        let mut z = 0.0f32;
        for (s, stage) in self.stages.iter().enumerate() {
            let out = stage[idx].forward(&mut g, store, input);
            z = g.value(out).get(0, 0);
            if s + 1 < self.stages.len() {
                idx = self.route(z, self.stages[s + 1].len());
            }
        }
        z
    }

    /// Trains the hierarchy stage by stage.
    pub fn fit(ds: &Dataset, workload: &Workload, cfg: &RmiConfig) -> Self {
        let dim = ds.dim();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let mut store = ParamStore::new();
        let emb = TEmbedding::new(&mut store, "temb", cfg.base.t_embed, &mut rng);
        let in_dim = dim + cfg.base.t_embed;
        let stages: Vec<Vec<Mlp>> = cfg
            .stage_sizes
            .iter()
            .enumerate()
            .map(|(s, &size)| {
                (0..size.max(1))
                    .map(|i| {
                        let mut widths = vec![in_dim];
                        widths.extend_from_slice(&cfg.base.hidden);
                        widths.push(1);
                        Mlp::new(
                            &mut store,
                            &format!("s{s}m{i}"),
                            &widths,
                            Activation::Relu,
                            Activation::Linear,
                            &mut rng,
                        )
                    })
                    .collect()
            })
            .collect();

        let pairs = flatten(&workload.train, cfg.base.log_eps);
        let n = pairs.t.len();
        let zmin = pairs.ylog.iter().cloned().fold(f32::MAX, f32::min);
        let zmax = pairs.ylog.iter().cloned().fold(f32::MIN, f32::max);

        let mut model = RmiEstimator {
            store,
            emb,
            stages,
            zmin,
            zmax,
            dim,
            log_eps: cfg.base.log_eps,
            name: "RMI".into(),
        };

        // assignment of each pair to a model per stage; stage 0 -> model 0
        let mut assignment: Vec<usize> = vec![0; n];
        let epochs_per_stage = (cfg.base.epochs / cfg.stage_sizes.len().max(1)).max(1);
        for s in 0..model.stages.len() {
            let num_models = model.stages[s].len();
            // gather pair indices per model of this stage
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_models];
            for (i, &m) in assignment.iter().enumerate() {
                buckets[m.min(num_models - 1)].push(i);
            }
            // train each model of this stage on its bucket
            for (mi, bucket) in buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                train_pairs_subset(
                    &mut model.store,
                    &model.emb,
                    &model.stages[s][mi],
                    &pairs,
                    bucket,
                    dim,
                    epochs_per_stage,
                    &cfg.base,
                    &mut rng,
                );
            }
            // compute routing for the next stage
            if s + 1 < model.stages.len() {
                let next = model.stages[s + 1].len();
                for (i, a) in assignment.iter_mut().enumerate() {
                    let pred = predict_submodel(
                        &model.store,
                        &model.emb,
                        &model.stages[s][(*a).min(num_models - 1)],
                        pairs.x[i],
                        pairs.t[i],
                    );
                    *a = model.route_static(pred, next);
                }
            }
        }
        model
    }

    fn route_static(&self, z: f32, next_size: usize) -> usize {
        self.route(z, next_size)
    }
}

fn predict_submodel(store: &ParamStore, emb: &TEmbedding, net: &Mlp, x: &[f32], t: f32) -> f32 {
    let mut g = Graph::new();
    let xv = g.leaf(Matrix::row_vector(x));
    let tv = g.leaf(Matrix::full(1, 1, t));
    let te = emb.forward(&mut g, store, tv);
    let input = g.concat_cols(xv, te);
    let out = net.forward(&mut g, store, input);
    g.value(out).get(0, 0)
}

/// Trains one sub-model on a subset of pairs (Huber on logs). One arena
/// tape is reused across all batches and epochs (the PR 3 lifecycle):
/// leaves gather in place, gradients reach Adam as borrows.
#[allow(clippy::too_many_arguments)]
fn train_pairs_subset(
    store: &mut ParamStore,
    emb: &TEmbedding,
    net: &Mlp,
    pairs: &crate::common::Pairs<'_>,
    subset: &[usize],
    dim: usize,
    epochs: usize,
    cfg: &NeuralConfig,
    rng: &mut StdRng,
) {
    let mut order: Vec<usize> = subset.to_vec();
    let mut opt = Adam::new(cfg.learning_rate).with_clip(1.0);
    let mut g = Graph::new();
    for _ in 0..epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            g.reset();
            let (xv, tv, yv) = crate::common::batch_leaves(&mut g, pairs, chunk, dim);
            let te = emb.forward(&mut g, store, tv);
            let input = g.concat_cols(xv, te);
            let pred = net.forward(&mut g, store, input);
            let r = g.sub(pred, yv);
            let h = g.huber(r, cfg.huber_delta);
            let loss = g.mean(h);
            g.backward(loss);
            let grads = g.param_grad_refs();
            opt.step_refs(store, &grads);
        }
    }
}

impl RmiEstimator {
    /// Clamps a log-space prediction to the training label range (with a
    /// small margin) — leaf models trained on tiny routing buckets can
    /// otherwise extrapolate wildly.
    fn clamp_z(&self, z: f32) -> f32 {
        z.clamp(self.zmin - 1.0, self.zmax + 1.0)
    }
}

impl SelectivityEstimator for RmiEstimator {
    fn estimate(&self, x: &[f32], t: f32) -> f64 {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let z = self.forward_one(&self.store, x, t);
        from_log(self.clamp_z(z) as f64, self.log_eps)
    }

    fn estimate_many(&self, x: &[f32], ts: &[f32]) -> Vec<f64> {
        // the leaf model can differ per threshold; batch per unique leaf
        // is possible, but route-per-threshold stays simple and correct.
        // Batch the first stage since it is shared:
        let mut g = Graph::new();
        let xv = g.leaf(replicate(x, ts.len()));
        let tv = g.leaf(Matrix::col_vector(ts));
        let te = self.emb.forward(&mut g, &self.store, tv);
        let input = g.concat_cols(xv, te);
        let out0 = self.stages[0][0].forward(&mut g, &self.store, input);
        let z0: Vec<f32> = g.value(out0).data().to_vec();
        if self.stages.len() == 1 {
            return z0
                .iter()
                .map(|&z| from_log(self.clamp_z(z) as f64, self.log_eps))
                .collect();
        }
        ts.iter()
            .zip(&z0)
            .map(|(&t, &z_first)| {
                let mut idx = self.route(z_first, self.stages[1].len());
                let mut z = z_first;
                for s in 1..self.stages.len() {
                    z = predict_submodel(&self.store, &self.emb, &self.stages[s][idx], x, t);
                    if s + 1 < self.stages.len() {
                        idx = self.route(z, self.stages[s + 1].len());
                    }
                }
                from_log(self.clamp_z(z) as f64, self.log_eps)
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_data::generators::{fasttext_like, GeneratorConfig};
    use selnet_eval::evaluate;
    use selnet_metric::DistanceKind;
    use selnet_workload::{generate_workload, WorkloadConfig};

    #[test]
    fn rmi_trains_and_routes() {
        let ds = fasttext_like(&GeneratorConfig::new(1000, 6, 4, 19));
        let mut wcfg = WorkloadConfig::new(50, DistanceKind::Euclidean, 7);
        wcfg.thresholds_per_query = 8;
        wcfg.threads = 4;
        let w = generate_workload(&ds, &wcfg);
        let model = RmiEstimator::fit(&ds, &w, &RmiConfig::tiny());
        let m = evaluate(&model, &w.test);
        assert!(m.mse.is_finite() && m.count > 0);
        // estimate and estimate_many agree
        let q = &w.test[0];
        let many = model.estimate_many(&q.x, &q.thresholds);
        for (i, &t) in q.thresholds.iter().enumerate() {
            let one = model.estimate(&q.x, t);
            assert!((one - many[i]).abs() < 1e-6 * one.abs().max(1.0));
        }
    }

    #[test]
    fn routing_is_bounded() {
        let ds = fasttext_like(&GeneratorConfig::new(400, 5, 3, 23));
        let mut wcfg = WorkloadConfig::new(20, DistanceKind::Euclidean, 9);
        wcfg.thresholds_per_query = 6;
        wcfg.threads = 2;
        let w = generate_workload(&ds, &wcfg);
        let mut cfg = RmiConfig::tiny();
        cfg.base.epochs = 4;
        let model = RmiEstimator::fit(&ds, &w, &cfg);
        for z in [-100.0f32, 0.0, 1.5, 100.0] {
            let r = model.route(z, 4);
            assert!(r < 4);
        }
    }
}
