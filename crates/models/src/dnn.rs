//! Vanilla deep regression (the DNN baseline): an FFN over
//! `[x; ReLU(W t)]` predicting `log(y + ε)`. No consistency guarantee.

use crate::common::{from_log, train_minibatch, NeuralConfig, TEmbedding};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_tensor::{Activation, Graph, Matrix, Mlp, ParamStore};
use selnet_workload::Workload;

/// A trained DNN estimator.
pub struct DnnEstimator {
    store: ParamStore,
    emb: TEmbedding,
    net: Mlp,
    dim: usize,
    log_eps: f32,
    name: String,
}

/// Replicates one query row for batched threshold evaluation.
pub(crate) fn replicate(x: &[f32], rows: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, x.len());
    for i in 0..rows {
        m.row_mut(i).copy_from_slice(x);
    }
    m
}

impl DnnEstimator {
    /// Trains the DNN on a workload.
    pub fn fit(ds: &Dataset, workload: &Workload, cfg: &NeuralConfig) -> Self {
        let dim = ds.dim();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let emb = TEmbedding::new(&mut store, "temb", cfg.t_embed, &mut rng);
        let mut widths = vec![dim + cfg.t_embed];
        widths.extend_from_slice(&cfg.hidden);
        widths.push(1);
        let net = Mlp::new(
            &mut store,
            "dnn",
            &widths,
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );

        let emb_f = emb.clone();
        let net_f = net.clone();
        let emb_p = emb.clone();
        let net_p = net.clone();
        let log_eps = cfg.log_eps;
        train_minibatch(
            &mut store,
            &workload.train,
            &workload.valid,
            cfg,
            dim,
            move |g, s, x, t| {
                let te = emb_f.forward(g, s, t);
                let input = g.concat_cols(x, te);
                (net_f.forward(g, s, input), true)
            },
            move |s, x, ts| {
                let mut g = Graph::new();
                let xv = g.leaf(replicate(x, ts.len()));
                let tv = g.leaf(Matrix::col_vector(ts));
                let te = emb_p.forward(&mut g, s, tv);
                let input = g.concat_cols(xv, te);
                let out = net_p.forward(&mut g, s, input);
                g.value(out)
                    .data()
                    .iter()
                    .map(|&z| from_log(z as f64, log_eps))
                    .collect()
            },
            |_| {},
        );
        DnnEstimator {
            store,
            emb,
            net,
            dim,
            log_eps,
            name: "DNN".into(),
        }
    }
}

impl SelectivityEstimator for DnnEstimator {
    fn estimate(&self, x: &[f32], t: f32) -> f64 {
        self.estimate_many(x, &[t])[0]
    }

    fn estimate_many(&self, x: &[f32], ts: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let mut g = Graph::new();
        let xv = g.leaf(replicate(x, ts.len()));
        let tv = g.leaf(Matrix::col_vector(ts));
        let te = self.emb.forward(&mut g, &self.store, tv);
        let input = g.concat_cols(xv, te);
        let out = self.net.forward(&mut g, &self.store, input);
        g.value(out)
            .data()
            .iter()
            .map(|&z| from_log(z as f64, self.log_eps))
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selnet_data::generators::{fasttext_like, GeneratorConfig};
    use selnet_eval::evaluate;
    use selnet_metric::DistanceKind;
    use selnet_workload::{generate_workload, WorkloadConfig};

    #[test]
    fn dnn_trains_and_predicts() {
        let ds = fasttext_like(&GeneratorConfig::new(1200, 6, 4, 9));
        let mut wcfg = WorkloadConfig::new(60, DistanceKind::Euclidean, 3);
        wcfg.thresholds_per_query = 10;
        wcfg.threads = 4;
        let w = generate_workload(&ds, &wcfg);
        let model = DnnEstimator::fit(&ds, &w, &NeuralConfig::tiny());
        let m = evaluate(&model, &w.test);
        assert!(m.mse.is_finite() && m.count > 0);
        // sanity: beats predicting zero everywhere
        let zero_mse: f64 = {
            let flat = Workload::flatten(&w.test);
            flat.iter().map(|f| f.2 * f.2).sum::<f64>() / flat.len() as f64
        };
        assert!(
            m.mse < zero_mse,
            "DNN {} vs zero predictor {}",
            m.mse,
            zero_mse
        );
    }
}
