//! Tier-1 drift gauntlet: the tiny-scale §5.4 update harness run as a
//! deterministic test. The same code path `selnet-drift` executes at full
//! scale must, at seconds scale, prove the serving invariants hold under
//! every drift family — and that the recorded series replays bit-exactly.

use selnet_bench::driftbench::{
    check_drift_block, json_section, render_drift_json, run_gauntlet, DriftFloors, GauntletConfig,
    ScheduleSpec,
};

/// Every drift family, tiny scale: no served reply may ever violate
/// monotonicity or differ from the published generation's own evaluation,
/// every schedule must hot-swap at least once with at least one applied
/// retrain, and the post-swap accuracy must stay within the floors'
/// head-room of the pre-drift accuracy.
#[test]
fn gauntlet_invariants_hold_for_every_schedule() {
    let floors = DriftFloors::default();
    let mut results = Vec::new();
    for spec in ScheduleSpec::all() {
        let r = run_gauntlet(&GauntletConfig::tiny(spec));
        assert_eq!(
            r.monotonicity_violations, 0,
            "[{}] served replies must be monotone in t",
            r.schedule
        );
        assert_eq!(
            r.bit_mismatches, 0,
            "[{}] served replies must be bit-identical to the published \
             generation's estimate_many",
            r.schedule
        );
        assert!(
            r.hot_swaps >= 1,
            "[{}] expected at least one hot swap, got {}",
            r.schedule,
            r.hot_swaps
        );
        assert!(
            r.retrains_applied >= 1,
            "[{}] forced-retrain policy must apply at least one retrain",
            r.schedule
        );
        assert_eq!(
            r.hot_swaps,
            r.lineage.len(),
            "[{}] lineage must record every swap",
            r.schedule
        );
        assert!(
            r.lineage.iter().all(|s| s.label == "spawn_update"),
            "[{}] gauntlet swaps are all spawn_update-traced",
            r.schedule
        );
        assert!(
            r.mape_ratio() <= floors.max_post_swap_mape_ratio,
            "[{}] post-swap MAPE ratio {:.3} above floor {}",
            r.schedule,
            r.mape_ratio(),
            floors.max_post_swap_mape_ratio
        );
        assert!(
            r.ticks.iter().all(|t| t.mape.is_finite() && t.mape >= 0.0),
            "[{}] MAPE series must stay finite",
            r.schedule
        );
        // generations never move backwards while the gauntlet swaps
        let gens: Vec<u64> = r.ticks.iter().map(|t| t.generation).collect();
        assert!(
            gens.windows(2).all(|p| p[1] >= p[0]),
            "[{}] generation series must be non-decreasing: {gens:?}",
            r.schedule
        );
        results.push(r);
    }

    // the artifact the full-scale run records must pass its own guard
    let blob = render_drift_json(&results, "tiny");
    for r in &results {
        let block = json_section(&blob, &r.schedule)
            .unwrap_or_else(|| panic!("missing {} block", r.schedule));
        let failures = check_drift_block(block, &floors);
        assert!(failures.is_empty(), "[{}] {failures:?}", r.schedule);
    }
}

/// The gauntlet is step-counted, not wall-clocked: two runs of the same
/// config must produce bit-identical accuracy series, generations, and
/// retrain decisions, even though real threads race a real engine in
/// between.
#[test]
fn gauntlet_replays_bit_exactly() {
    let cfg = GauntletConfig::tiny(ScheduleSpec::Abrupt);
    let a = run_gauntlet(&cfg);
    let b = run_gauntlet(&cfg);
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (ta, tb) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(ta.op_index, tb.op_index);
        assert_eq!(ta.generation, tb.generation);
        assert_eq!(ta.dataset_len, tb.dataset_len);
        assert_eq!(
            ta.mape.to_bits(),
            tb.mape.to_bits(),
            "MAPE series must replay bit-exactly at op {}",
            ta.op_index
        );
        assert_eq!(ta.mae.to_bits(), tb.mae.to_bits());
    }
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.hot_swaps, b.hot_swaps);
    assert_eq!(a.pre_drift_mape.to_bits(), b.pre_drift_mape.to_bits());
    assert_eq!(a.post_swap_mape.to_bits(), b.post_swap_mape.to_bits());
}

/// A different seed is a genuinely different run (the gauntlet is not
/// accidentally constant), while the invariants still hold.
#[test]
fn gauntlet_seed_changes_the_stream_but_not_the_invariants() {
    let mut cfg = GauntletConfig::tiny(ScheduleSpec::Gradual);
    cfg.seed = 77;
    let r = run_gauntlet(&cfg);
    assert_eq!(r.monotonicity_violations, 0);
    assert_eq!(r.bit_mismatches, 0);
    assert!(r.hot_swaps >= 1);
    let base = run_gauntlet(&GauntletConfig::tiny(ScheduleSpec::Gradual));
    assert_ne!(
        r.ticks.last().unwrap().mape.to_bits(),
        base.ticks.last().unwrap().mape.to_bits(),
        "different seeds should drift differently"
    );
}
