//! Shared fixture and timing helpers for the serving benchmarks and the
//! CI bench-regression guard (`serve_bench_guard`), so both measure
//! exactly the same workload.

use selnet_core::{fit_partitioned, PartitionConfig, PartitionedSelNet, SelNetConfig};
use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_data::Dataset;
use selnet_metric::DistanceKind;
use selnet_workload::{generate_workload, WorkloadConfig};
use std::time::Instant;

/// Bench batch size — the acceptance point for coalescing throughput.
pub const BATCH: usize = 64;

/// Trains the tiny partitioned model every serving benchmark runs against.
pub fn model_fixture() -> (Dataset, PartitionedSelNet) {
    let ds = fasttext_like(&GeneratorConfig::new(600, 5, 3, 7));
    let mut wcfg = WorkloadConfig::new(24, DistanceKind::Euclidean, 8);
    wcfg.thresholds_per_query = 8;
    let w = generate_workload(&ds, &wcfg);
    let mut cfg = SelNetConfig::tiny();
    cfg.epochs = 3;
    let pcfg = PartitionConfig {
        k: 3,
        pretrain_epochs: 1,
        ..Default::default()
    };
    let (model, _) = fit_partitioned(&ds, &w, &cfg, &pcfg);
    (ds, model)
}

/// `BATCH` distinct `(x, t)` queries spread over the database and the
/// threshold range.
pub fn query_batch(ds: &Dataset, tmax: f32) -> (Vec<Vec<f32>>, Vec<f32>) {
    let xs: Vec<Vec<f32>> = (0..BATCH)
        .map(|i| ds.row(i * 7 % ds.len()).to_vec())
        .collect();
    let ts: Vec<f32> = (0..BATCH)
        .map(|i| tmax * (0.1 + 0.9 * i as f32 / BATCH as f32))
        .collect();
    (xs, ts)
}

/// Best-of-`samples` mean wall-clock milliseconds of `iters` runs of `f`.
pub fn time_ms(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up
    let mut best = f64::MAX;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

/// Extracts the numeric value of `"key": <number>` from a JSON blob —
/// enough to read the floors checked into `BENCH_serve.json` without a
/// JSON dependency. Returns `None` when the key is absent.
pub fn json_number(blob: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = blob.find(&needle)?;
    let rest = &blob[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_extracts_floors() {
        let blob = r#"{ "floors": { "speedup_batched_vs_single": 2.5, "plan_vs_tape": 1.2 } }"#;
        assert_eq!(json_number(blob, "speedup_batched_vs_single"), Some(2.5));
        assert_eq!(json_number(blob, "plan_vs_tape"), Some(1.2));
        assert_eq!(json_number(blob, "missing"), None);
    }
}
