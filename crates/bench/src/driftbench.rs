//! The drift gauntlet: the §5.4 update loop driven end to end under
//! served traffic, with accuracy-over-time recording.
//!
//! One gauntlet run wires every layer of the reproduction together:
//!
//! 1. train a [`PartitionedSelNet`] and register it as a tenant of a
//!    multi-tenant [`Engine`];
//! 2. stream insert/delete operations through
//!    [`UpdateSimulator::step_drifted`] under a step-counted
//!    [`DriftSchedule`] (gradual / abrupt / cyclical / adversarial),
//!    keeping an exact oracle — the eval split's labels are maintained
//!    incrementally, so ground truth never goes stale;
//! 3. every `ops_per_tick` operations, take a **measurement tick**: serve
//!    the eval queries *through the engine* (mixing the pipelined and
//!    blocking paths) and record MAPE-vs-exact-oracle, monotonicity
//!    violations, and bit-identity against the published generation's own
//!    `estimate_many`;
//! 4. every `retrain_every_ticks` ticks, trigger a §5.4
//!    `check_and_update` retrain via [`Tenant::spawn_update`] — the old
//!    generation keeps serving while the retrain runs (the gauntlet pumps
//!    traffic for the whole retrain), then the new generation is hot
//!    swapped in and the swap lands in the tenant's lineage log.
//!
//! Determinism: schedules are pure functions of the op index, the
//! simulator's RNG is seeded (and snapshottable), training is
//! deterministic for any thread count, and retrain handles are joined at
//! the tick boundary before the tick measures — so the recorded MAPE
//! series is bit-reproducible run to run. Wall-clock (tick and swap
//! durations) is *recorded* for the benchmark artifact but never
//! asserted on.

use crate::servebench::json_number;
use selnet_core::{
    fit_partitioned, PartitionConfig, PartitionedSelNet, SelNetConfig, UpdatePolicy,
};
use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_eval::{MetricsAccumulator, SelectivityEstimator};
use selnet_metric::DistanceKind;
use selnet_obs::{Histogram, HistogramSnapshot};
use selnet_serve::engine::{Engine, EngineConfig, Request, SubmitError};
use selnet_serve::registry::{ModelRegistry, SwapRecord, Tenant};
use selnet_workload::{
    generate_workload, DriftSchedule, LabeledQuery, UpdateSimulator, WorkloadConfig,
};
use std::sync::Arc;
use std::time::Instant;

/// The tenant name every gauntlet serves under.
pub const TENANT: &str = "drift";

/// Which of the four drift families to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// Slow linear slide of the insertion distribution.
    Gradual,
    /// Step change one third of the way through the stream.
    Abrupt,
    /// Sinusoidal oscillation of the insertion distribution.
    Cyclical,
    /// Shell inserts around a served probe query (arXiv:2401.06047-style
    /// worst case for the selectivity surface).
    Adversarial,
}

impl ScheduleSpec {
    /// All four families, in recording order.
    pub fn all() -> [ScheduleSpec; 4] {
        [
            ScheduleSpec::Gradual,
            ScheduleSpec::Abrupt,
            ScheduleSpec::Cyclical,
            ScheduleSpec::Adversarial,
        ]
    }

    /// The family label used in reports and `BENCH_drift.json` keys.
    pub fn label(&self) -> &'static str {
        match self {
            ScheduleSpec::Gradual => "gradual",
            ScheduleSpec::Abrupt => "abrupt",
            ScheduleSpec::Cyclical => "cyclical",
            ScheduleSpec::Adversarial => "adversarial",
        }
    }

    /// Parses a family label (as the `selnet-drift` CLI accepts it).
    pub fn parse(s: &str) -> Option<ScheduleSpec> {
        match s {
            "gradual" => Some(ScheduleSpec::Gradual),
            "abrupt" => Some(ScheduleSpec::Abrupt),
            "cyclical" => Some(ScheduleSpec::Cyclical),
            "adversarial" => Some(ScheduleSpec::Adversarial),
            _ => None,
        }
    }
}

/// Problem-size knobs: dataset, workload, and training scale.
#[derive(Clone, Debug)]
pub struct GauntletScale {
    /// Dataset records.
    pub records: usize,
    /// Dataset dimensionality.
    pub dim: usize,
    /// Generator clusters.
    pub clusters: usize,
    /// Labeled queries in the workload (80:10:10 split; the 10% test
    /// split is the gauntlet's oracle-tracked eval set).
    pub queries: usize,
    /// Thresholds per labeled query.
    pub thresholds_per_query: usize,
    /// Initial-fit epochs.
    pub train_epochs: usize,
    /// Partitions (`k`) of the partitioned model.
    pub partitions: usize,
    /// Epoch cap for each §5.4 incremental retrain.
    pub update_epochs: usize,
    /// Records per update operation.
    pub op_batch: usize,
}

impl GauntletScale {
    /// Seconds-scale: the size the tier-1 test and the CI smoke job run.
    pub fn tiny() -> Self {
        GauntletScale {
            records: 300,
            dim: 4,
            clusters: 3,
            queries: 40,
            thresholds_per_query: 6,
            train_epochs: 2,
            partitions: 2,
            update_epochs: 2,
            op_batch: 5,
        }
    }

    /// The recorded-benchmark size (`BENCH_drift.json`).
    pub fn full() -> Self {
        GauntletScale {
            records: 1200,
            dim: 6,
            clusters: 4,
            queries: 60,
            thresholds_per_query: 8,
            train_epochs: 4,
            partitions: 3,
            update_epochs: 4,
            op_batch: 10,
        }
    }
}

/// One gauntlet run's full configuration.
#[derive(Clone, Debug)]
pub struct GauntletConfig {
    /// Drift family to run.
    pub spec: ScheduleSpec,
    /// Problem size.
    pub scale: GauntletScale,
    /// Total update operations to stream.
    pub total_ops: usize,
    /// Operations between measurement ticks.
    pub ops_per_tick: usize,
    /// Ticks between §5.4 retrain triggers.
    pub retrain_every_ticks: usize,
    /// The §5.4 update policy each retrain runs with. A negative
    /// `mae_tolerance` forces every trigger to retrain (the tiny-scale
    /// default, so CI always exercises the swap path); a positive one
    /// lets the skip rule act and records the skips.
    pub policy: UpdatePolicy,
    /// Seed for data, workload, model init, and the op stream.
    pub seed: u64,
    /// Engine knobs the gauntlet serves through.
    pub engine: EngineConfig,
}

impl GauntletConfig {
    fn engine_defaults() -> EngineConfig {
        EngineConfig {
            workers: 2,
            shards: 1,
            max_batch_rows: 16,
            cache_entries: 32,
            auto_batch_min_rows: 0,
            max_queue_rows: 4096,
            slow_query_us: 0,
            trace_buffer: 0,
            replay_threads: 1,
        }
    }

    /// The deterministic seconds-scale gauntlet (tier-1 / CI smoke).
    pub fn tiny(spec: ScheduleSpec) -> Self {
        GauntletConfig {
            spec,
            scale: GauntletScale::tiny(),
            total_ops: 48,
            ops_per_tick: 8,
            retrain_every_ticks: 3,
            policy: UpdatePolicy {
                mae_tolerance: -1.0,
                patience: 2,
                max_epochs: 2,
            },
            seed: 11,
            engine: Self::engine_defaults(),
        }
    }

    /// The recorded-benchmark gauntlet.
    pub fn full(spec: ScheduleSpec) -> Self {
        GauntletConfig {
            spec,
            scale: GauntletScale::full(),
            total_ops: 180,
            ops_per_tick: 15,
            retrain_every_ticks: 3,
            policy: UpdatePolicy {
                mae_tolerance: -1.0,
                patience: 2,
                max_epochs: 4,
            },
            seed: 11,
            engine: Self::engine_defaults(),
        }
    }
}

/// One measurement tick of the accuracy-over-time series.
#[derive(Clone, Debug)]
pub struct TickRecord {
    /// Operation index the tick was taken at (0 = pre-drift baseline).
    pub op_index: usize,
    /// Generation serving at measurement time.
    pub generation: u64,
    /// Records in the drifted dataset.
    pub dataset_len: usize,
    /// MAPE of served replies against the exact (incrementally
    /// maintained) oracle labels.
    pub mape: f64,
    /// MAE against the same oracle.
    pub mae: f64,
    /// Monotonicity violations across every served reply this tick
    /// (ascending threshold grids — a consistent model scores 0).
    pub monotonicity_violations: usize,
    /// Served replies that were not bit-identical to the published
    /// generation's own `estimate_many` (must be 0: coalescing and
    /// caching may never change an answer).
    pub bit_mismatches: usize,
    /// Wall-clock milliseconds the tick's serving took (recorded for the
    /// benchmark artifact; never asserted).
    pub tick_ms: f64,
}

/// Everything one gauntlet run produced.
#[derive(Clone, Debug)]
pub struct GauntletResult {
    /// Family label (`gradual` / `abrupt` / `cyclical` / `adversarial`).
    pub schedule: String,
    /// MAPE at op 0, before any drift.
    pub pre_drift_mape: f64,
    /// MAPE measured immediately after the **last** hot swap.
    pub post_swap_mape: f64,
    /// MAPE at the final tick.
    pub final_mape: f64,
    /// Worst tick MAPE over the whole run.
    pub max_mape: f64,
    /// Hot swaps published (every `spawn_update` publishes, including
    /// restore-kept models — the swap is what's counted).
    pub hot_swaps: usize,
    /// Retrains whose parameters actually changed
    /// (`UpdateDecision::retrained()`).
    pub retrains_applied: usize,
    /// Retrain triggers the §5.4 skip rule declined.
    pub retrains_skipped: usize,
    /// Total monotonicity violations across every served reply (ticks
    /// plus mid-retrain pump traffic).
    pub monotonicity_violations: usize,
    /// Total served replies differing from the published generation's
    /// direct evaluation.
    pub bit_mismatches: usize,
    /// Requests shed by admission control over the run.
    pub shed_requests: u64,
    /// The tenant's generation lineage (one record per hot swap, with the
    /// producing retrain's wall-clock cost).
    pub lineage: Vec<SwapRecord>,
    /// One `UpdateDecision::summary()` per retrain trigger, in order.
    pub decisions: Vec<String>,
    /// The accuracy-over-time series.
    pub ticks: Vec<TickRecord>,
    /// Queued-rows depth, sampled at every tick and throughout each
    /// mid-retrain traffic pump (log-bucketed; quantiles are
    /// bucket-exact).
    pub queue_depth: HistogramSnapshot,
    /// Swap (producing-retrain) latency in microseconds, straight from
    /// the tenant's `selnet_retrain_us` histogram — the same series the
    /// serving fleet exposes over `?metrics`.
    pub swap_latency_us: HistogramSnapshot,
}

impl GauntletResult {
    /// `post_swap_mape / pre_drift_mape` — the adaptation headroom the
    /// guard floors bound (both terms are oracle-exact, so the ratio is
    /// deterministic).
    pub fn mape_ratio(&self) -> f64 {
        self.post_swap_mape / self.pre_drift_mape.max(1e-12)
    }

    /// Mean producing-update cost over the lineage, milliseconds.
    pub fn mean_swap_ms(&self) -> f64 {
        if self.lineage.is_empty() {
            return 0.0;
        }
        self.lineage.iter().map(|s| s.update_ms).sum::<f64>() / self.lineage.len() as f64
    }
}

/// Builds the concrete [`DriftSchedule`] for a family, sized relative to
/// the trained model's threshold range (`tmax`) so drift magnitudes mean
/// the same thing at every scale.
pub fn build_schedule(
    spec: ScheduleSpec,
    tmax: f32,
    dim: usize,
    seed: u64,
    total_ops: usize,
    probe: &[LabeledQuery],
) -> DriftSchedule {
    let half = (total_ops / 2).max(2);
    match spec {
        ScheduleSpec::Gradual => {
            DriftSchedule::gradual(dim, seed ^ 1, 0.5 * tmax / total_ops.max(1) as f32)
        }
        ScheduleSpec::Abrupt => DriftSchedule::abrupt(dim, seed ^ 2, 0.5 * tmax, total_ops / 3),
        ScheduleSpec::Cyclical => DriftSchedule::cyclical(dim, seed ^ 3, 0.4 * tmax, half),
        ScheduleSpec::Adversarial => {
            // the shell surrounds a query the gauntlet actually serves, so
            // the induced selectivity knee sits exactly where it hurts
            let center = probe
                .first()
                .map(|q| q.x.clone())
                .unwrap_or_else(|| vec![0.0; dim]);
            DriftSchedule::adversarial(center, 0.3 * tmax, 0.9 * tmax, half)
        }
    }
}

fn request(q: &LabeledQuery) -> Request {
    Request::new(q.x.clone())
        .thresholds(q.thresholds.clone())
        .model(TENANT)
}

/// Serves one eval pass through the engine — half the queries pipelined
/// (`submit`, coalescing), half blocking (inline fast path) — and scores
/// every reply against the oracle labels and the published generation.
fn measure(
    engine: &Engine<PartitionedSelNet>,
    tenant: &Tenant<PartitionedSelNet>,
    eval: &[LabeledQuery],
    op_index: usize,
    dataset_len: usize,
) -> TickRecord {
    let started = Instant::now();
    let (generation, current) = tenant.current();
    let mut acc = MetricsAccumulator::new();
    let mut violations = 0usize;
    let mut mismatches = 0usize;
    // pipelined half: submitted as one burst so the worker coalesces them
    let handles: Vec<_> = eval
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, q)| engine.submit(request(q)))
        .collect();
    let mut replies: Vec<(usize, Vec<f64>)> = Vec::with_capacity(eval.len());
    for ((i, q), handle) in eval
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .zip(handles)
    {
        let got = match handle {
            Ok(h) => h.wait().expect("engine running"),
            // shed under a saturated bench config: the blocking path is
            // never shed and returns the identical bits
            Err(SubmitError::Overloaded { .. }) => {
                engine.serve_blocking(&request(q)).expect("engine running")
            }
            Err(e) => panic!("submit failed: {e}"),
        };
        replies.push((i, got));
    }
    for (i, q) in eval.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
        let got = engine.serve_blocking(&request(q)).expect("engine running");
        replies.push((i, got));
    }
    for (i, got) in replies {
        let q = &eval[i];
        // bit-identity: the served reply must equal the published
        // generation's own direct evaluation, regardless of path
        if got != current.estimate_many(&q.x, &q.thresholds) {
            mismatches += 1;
        }
        violations += got.windows(2).filter(|p| p[1] < p[0]).count();
        for (pred, &truth) in got.iter().zip(&q.selectivities) {
            acc.push(*pred, truth);
        }
    }
    let metrics = acc.finish();
    TickRecord {
        op_index,
        generation,
        dataset_len,
        mape: metrics.mape,
        mae: metrics.mae,
        monotonicity_violations: violations,
        bit_mismatches: mismatches,
        tick_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one drift gauntlet to completion and returns its full record.
pub fn run_gauntlet(cfg: &GauntletConfig) -> GauntletResult {
    let scale = &cfg.scale;
    let kind = DistanceKind::Euclidean;
    let mut ds = fasttext_like(&GeneratorConfig::new(
        scale.records,
        scale.dim,
        scale.clusters,
        cfg.seed,
    ));
    let mut wcfg = WorkloadConfig::new(scale.queries, kind, cfg.seed ^ 5);
    wcfg.thresholds_per_query = scale.thresholds_per_query;
    let w = generate_workload(&ds, &wcfg);
    let mut train = w.train.clone();
    let mut valid = w.valid.clone();
    // the eval split doubles as the exact oracle: its labels are
    // maintained incrementally through every op, so "truth" never stales
    let mut eval = w.test.clone();

    let mut scfg = SelNetConfig::tiny();
    scfg.epochs = scale.train_epochs;
    scfg.seed = cfg.seed;
    let pcfg = PartitionConfig {
        k: scale.partitions,
        pretrain_epochs: 1,
        ..Default::default()
    };
    let (model, _) = fit_partitioned(&ds, &w, &scfg, &pcfg);
    let tmax = model.tmax();
    let schedule = build_schedule(cfg.spec, tmax, ds.dim(), cfg.seed, cfg.total_ops, &eval);

    let registry = Arc::new(ModelRegistry::empty());
    let tenant = registry
        .register(TENANT, model)
        .expect("gauntlet tenant name is valid");
    let engine = Engine::start(Arc::clone(&registry), &cfg.engine);

    let mut sim = UpdateSimulator::new(cfg.seed ^ 0xd21f7);
    sim.batch = scale.op_batch;

    let queue_depth = Histogram::new();
    let mut ticks = Vec::new();
    ticks.push(measure(&engine, &tenant, &eval, 0, ds.len()));
    let pre_drift_mape = ticks[0].mape;
    let mut post_swap_mape = pre_drift_mape;
    let mut retrains_applied = 0usize;
    let mut retrains_skipped = 0usize;
    let mut pump_violations = 0usize;
    let mut decisions = Vec::new();

    let num_ticks = cfg.total_ops / cfg.ops_per_tick.max(1);
    let mut op = 0usize;
    for tick in 1..=num_ticks {
        for _ in 0..cfg.ops_per_tick {
            let spec = schedule.at(op);
            let mut splits = vec![
                train.as_mut_slice(),
                valid.as_mut_slice(),
                eval.as_mut_slice(),
            ];
            sim.step_drifted(&mut ds, &mut splits, kind, &spec);
            op += 1;
        }
        let retrain = cfg.retrain_every_ticks > 0 && tick % cfg.retrain_every_ticks == 0;
        if retrain {
            // §5.4: retrain a clone off-thread; the old generation keeps
            // serving — the gauntlet pumps traffic for the whole retrain
            let (ds_c, train_c, valid_c) = (ds.clone(), train.clone(), valid.clone());
            let policy = cfg.policy;
            let handle = tenant.spawn_update(move |m: &mut PartitionedSelNet| {
                m.check_and_update(&ds_c, kind, &train_c, &valid_c, &policy)
            });
            while !handle.is_finished() {
                queue_depth.record(engine.queued_rows_total());
                for q in &eval {
                    let got = engine.serve_blocking(&request(q)).expect("engine running");
                    // mid-retrain replies come from whichever complete
                    // generation answered — always monotone
                    pump_violations += got.windows(2).filter(|p| p[1] < p[0]).count();
                }
            }
            // joining at the tick boundary keeps the recorded series
            // deterministic: the measurement below always sees the
            // freshly-published generation
            let (decision, _generation) = handle.wait();
            if decision.retrained() {
                retrains_applied += 1;
            } else {
                retrains_skipped += 1;
            }
            decisions.push(decision.summary());
        }
        queue_depth.record(engine.queued_rows_total());
        let record = measure(&engine, &tenant, &eval, op, ds.len());
        if retrain {
            post_swap_mape = record.mape;
        }
        ticks.push(record);
    }

    let lineage = tenant.swap_log();
    let shed_requests = tenant.stats().snapshot().shed_requests;
    let swap_latency_us = tenant.stats().retrain_histogram();
    engine.shutdown();

    let final_mape = ticks.last().expect("at least the baseline tick").mape;
    let max_mape = ticks.iter().map(|t| t.mape).fold(0.0f64, f64::max);
    GauntletResult {
        schedule: cfg.spec.label().to_string(),
        pre_drift_mape,
        post_swap_mape,
        final_mape,
        max_mape,
        hot_swaps: lineage.len(),
        retrains_applied,
        retrains_skipped,
        monotonicity_violations: ticks
            .iter()
            .map(|t| t.monotonicity_violations)
            .sum::<usize>()
            + pump_violations,
        bit_mismatches: ticks.iter().map(|t| t.bit_mismatches).sum(),
        shed_requests,
        lineage,
        decisions,
        ticks,
        queue_depth: queue_depth.snapshot(),
        swap_latency_us,
    }
}

/// Floors `BENCH_drift.json` carries and `serve_bench_guard` re-checks.
pub struct DriftFloors {
    /// Monotonicity violations allowed across a whole run (0).
    pub max_monotonicity_violations: f64,
    /// Served-vs-direct mismatches allowed (0).
    pub max_bit_mismatches: f64,
    /// Minimum hot swaps every schedule must have published.
    pub min_hot_swaps: f64,
    /// Maximum allowed `post_swap_mape / pre_drift_mape`.
    pub max_post_swap_mape_ratio: f64,
    /// Minimum queue-depth histogram samples (the gauntlet samples at
    /// every tick, so an empty histogram means the instrumentation came
    /// unwired).
    pub min_queue_depth_samples: f64,
}

impl Default for DriftFloors {
    fn default() -> Self {
        DriftFloors {
            max_monotonicity_violations: 0.0,
            max_bit_mismatches: 0.0,
            min_hot_swaps: 1.0,
            max_post_swap_mape_ratio: 4.0,
            min_queue_depth_samples: 1.0,
        }
    }
}

fn json_f64_series(values: impl Iterator<Item = f64>) -> String {
    let items: Vec<String> = values.map(|v| format!("{v:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_u64_series(values: impl Iterator<Item = u64>) -> String {
    let items: Vec<String> = values.map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// Renders the `BENCH_drift.json` artifact: one block per schedule with
/// the accuracy-over-time and swap-latency series, plus the floors block
/// the guard enforces.
pub fn render_drift_json(results: &[GauntletResult], scale: &str) -> String {
    let floors = DriftFloors::default();
    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"Drift gauntlet (section 5.4 end to end): update streams under \
         four drift schedules served through the multi-tenant engine, with check_and_update \
         retrains hot-swapped mid-traffic. MAPE is measured against an exact, incrementally \
         maintained oracle at step-counted ticks; wall-clock fields are recorded, never \
         asserted.\",\n",
    );
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str("  \"schedules\": {\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{\n", r.schedule));
        out.push_str(&format!(
            "      \"pre_drift_mape\": {:.6},\n",
            r.pre_drift_mape
        ));
        out.push_str(&format!(
            "      \"post_swap_mape\": {:.6},\n",
            r.post_swap_mape
        ));
        out.push_str(&format!("      \"final_mape\": {:.6},\n", r.final_mape));
        out.push_str(&format!("      \"max_mape\": {:.6},\n", r.max_mape));
        out.push_str(&format!(
            "      \"post_swap_mape_ratio\": {:.6},\n",
            r.mape_ratio()
        ));
        out.push_str(&format!("      \"hot_swaps\": {},\n", r.hot_swaps));
        out.push_str(&format!(
            "      \"retrains_applied\": {},\n",
            r.retrains_applied
        ));
        out.push_str(&format!(
            "      \"retrains_skipped\": {},\n",
            r.retrains_skipped
        ));
        out.push_str(&format!(
            "      \"monotonicity_violations\": {},\n",
            r.monotonicity_violations
        ));
        out.push_str(&format!(
            "      \"bit_mismatches\": {},\n",
            r.bit_mismatches
        ));
        out.push_str(&format!("      \"shed_requests\": {},\n", r.shed_requests));
        out.push_str(&format!(
            "      \"mean_swap_ms\": {:.3},\n",
            r.mean_swap_ms()
        ));
        out.push_str(&format!(
            "      \"op_series\": {},\n",
            json_u64_series(r.ticks.iter().map(|t| t.op_index as u64))
        ));
        out.push_str(&format!(
            "      \"mape_series\": {},\n",
            json_f64_series(r.ticks.iter().map(|t| t.mape))
        ));
        out.push_str(&format!(
            "      \"generation_series\": {},\n",
            json_u64_series(r.ticks.iter().map(|t| t.generation))
        ));
        out.push_str(&format!(
            "      \"swap_ms_series\": {},\n",
            json_f64_series(r.lineage.iter().map(|s| s.update_ms))
        ));
        out.push_str(&format!(
            "      \"queue_depth_p50\": {},\n",
            r.queue_depth.quantile(0.50)
        ));
        out.push_str(&format!(
            "      \"queue_depth_p99\": {},\n",
            r.queue_depth.quantile(0.99)
        ));
        out.push_str(&format!(
            "      \"queue_depth_max\": {},\n",
            r.queue_depth.max
        ));
        out.push_str(&format!(
            "      \"queue_depth_samples\": {},\n",
            r.queue_depth.count
        ));
        out.push_str(&format!(
            "      \"swap_us_p50\": {},\n",
            r.swap_latency_us.quantile(0.50)
        ));
        out.push_str(&format!(
            "      \"swap_us_p99\": {},\n",
            r.swap_latency_us.quantile(0.99)
        ));
        out.push_str(&format!(
            "      \"swap_us_max\": {},\n",
            r.swap_latency_us.max
        ));
        out.push_str(&format!(
            "      \"swap_us_samples\": {}\n",
            r.swap_latency_us.count
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  },\n");
    out.push_str("  \"floors\": {\n");
    out.push_str(&format!(
        "    \"max_monotonicity_violations\": {},\n",
        floors.max_monotonicity_violations
    ));
    out.push_str(&format!(
        "    \"max_bit_mismatches\": {},\n",
        floors.max_bit_mismatches
    ));
    out.push_str(&format!(
        "    \"min_hot_swaps\": {},\n",
        floors.min_hot_swaps
    ));
    out.push_str(&format!(
        "    \"max_post_swap_mape_ratio\": {},\n",
        floors.max_post_swap_mape_ratio
    ));
    out.push_str(&format!(
        "    \"min_queue_depth_samples\": {},\n",
        floors.min_queue_depth_samples
    ));
    out.push_str(
        "    \"note\": \"Enforced by serve_bench_guard against the recorded blocks above, \
         and re-proven live by the tiny-scale gauntlet in CI (selnet-drift --assert).\"\n",
    );
    out.push_str("  }\n}\n");
    out
}

/// Extracts the balanced `{ ... }` object that follows `"key":` — enough
/// to scope [`json_number`] lookups to one schedule's block of
/// `BENCH_drift.json` without a JSON dependency.
pub fn json_section<'a>(blob: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = blob.find(&needle)?;
    let rest = &blob[at + needle.len()..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// One guard check over a recorded schedule block: returns the violated
/// constraints (empty = pass). Pure so the guard binary and tests share
/// it.
pub fn check_drift_block(block: &str, floors: &DriftFloors) -> Vec<String> {
    let mut failures = Vec::new();
    let mut check =
        |key: &str, ok: &dyn Fn(f64) -> bool, requirement: String| match json_number(block, key) {
            Some(v) if ok(v) => {}
            Some(v) => failures.push(format!("{key} = {v} violates {requirement}")),
            None => failures.push(format!("{key} missing from block")),
        };
    check(
        "monotonicity_violations",
        &|v| v <= floors.max_monotonicity_violations,
        format!("<= {}", floors.max_monotonicity_violations),
    );
    check(
        "bit_mismatches",
        &|v| v <= floors.max_bit_mismatches,
        format!("<= {}", floors.max_bit_mismatches),
    );
    check(
        "hot_swaps",
        &|v| v >= floors.min_hot_swaps,
        format!(">= {}", floors.min_hot_swaps),
    );
    check(
        "post_swap_mape_ratio",
        &|v| v <= floors.max_post_swap_mape_ratio,
        format!("<= {}", floors.max_post_swap_mape_ratio),
    );
    check(
        "queue_depth_samples",
        &|v| v >= floors.min_queue_depth_samples,
        format!(">= {}", floors.min_queue_depth_samples),
    );
    // the retrain histogram sees every publish, so its sample count obeys
    // the same floor the hot-swap count does
    check(
        "swap_us_samples",
        &|v| v >= floors.min_hot_swaps,
        format!(">= {}", floors.min_hot_swaps),
    );
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_section_scopes_lookups_per_schedule() {
        let blob = r#"{ "schedules": { "gradual": { "hot_swaps": 2, "inner": { "x": 1 } },
                        "abrupt": { "hot_swaps": 5 } }, "floors": { "min_hot_swaps": 1 } }"#;
        let gradual = json_section(blob, "gradual").unwrap();
        let abrupt = json_section(blob, "abrupt").unwrap();
        assert_eq!(json_number(gradual, "hot_swaps"), Some(2.0));
        assert_eq!(json_number(abrupt, "hot_swaps"), Some(5.0));
        assert!(json_section(blob, "missing").is_none());
    }

    #[test]
    fn check_drift_block_flags_each_violation() {
        let floors = DriftFloors::default();
        let good = r#"{ "monotonicity_violations": 0, "bit_mismatches": 0,
                       "hot_swaps": 2, "post_swap_mape_ratio": 1.1,
                       "queue_depth_samples": 7, "swap_us_samples": 2 }"#;
        assert!(check_drift_block(good, &floors).is_empty());
        let bad = r#"{ "monotonicity_violations": 3, "bit_mismatches": 0,
                      "hot_swaps": 0, "post_swap_mape_ratio": 9.0,
                      "queue_depth_samples": 0, "swap_us_samples": 0 }"#;
        let failures = check_drift_block(bad, &floors);
        assert_eq!(failures.len(), 5, "{failures:?}");
        let missing = r#"{ "hot_swaps": 1 }"#;
        assert_eq!(check_drift_block(missing, &floors).len(), 5);
    }

    #[test]
    fn schedule_spec_labels_round_trip() {
        for spec in ScheduleSpec::all() {
            assert_eq!(ScheduleSpec::parse(spec.label()), Some(spec));
        }
        assert_eq!(ScheduleSpec::parse("nope"), None);
    }
}
