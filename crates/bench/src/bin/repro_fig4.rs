//! Reproduces Figure 4: learned control-point placement of SelNet-ct vs
//! SelNet-ad-ct for two random test queries on fasttext-cos. SelNet-ad-ct
//! shares one τ vector across all queries; SelNet-ct adapts it per query.

use selnet_bench::harness::{build_setting, selnet_config, Scale, Setting};
use selnet_core::fit_named;
use selnet_workload::sorted_distances;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let (ds, w) = build_setting(Setting::FasttextCos, &scale);

    let (ct, ad) = std::thread::scope(|scope| {
        let h1 = {
            let (ds, w, scale) = (&ds, &w, &scale);
            scope.spawn(move || fit_named(ds, w, &selnet_config(scale), "SelNet-ct").0)
        };
        let h2 = {
            let (ds, w, scale) = (&ds, &w, &scale);
            scope.spawn(move || {
                let cfg = selnet_config(scale).without_adaptive_tau();
                fit_named(ds, w, &cfg, "SelNet-ad-ct").0
            })
        };
        (h1.join().expect("train"), h2.join().expect("train"))
    });

    println!("## Figure 4: control points on fasttext-cos (2 queries)");
    let mut csv = String::from("query,model,tau,p,ground_truth_at_tau\n");
    for (qi, q) in w.test.iter().take(2).enumerate() {
        let sorted = sorted_distances(&ds, &q.x, w.kind);
        for (label, model) in [("SelNet-ct", &ct), ("SelNet-ad-ct", &ad)] {
            let (tau, p) = model.control_points_for(&q.x);
            println!("\nquery {} — {label}:", qi + 1);
            for (t, pv) in tau.iter().zip(&p) {
                let truth = sorted.partition_point(|&d| d <= *t);
                println!("  tau = {t:>8.4}   p = {pv:>10.2}   truth = {truth}");
                csv.push_str(&format!("{},{label},{t},{pv},{truth}\n", qi + 1));
            }
        }
    }
    println!(
        "\nNote: SelNet-ad-ct rows share identical tau values across queries; \
         SelNet-ct adapts them to where each query's selectivity changes fastest."
    );
    selnet_bench::harness::write_results("fig4_control_points.csv", &csv);
}
