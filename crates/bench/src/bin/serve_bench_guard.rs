//! CI bench-regression guard for the serving hot path.
//!
//! Re-times the three ratios the serving layer's performance story rests
//! on — `speedup_batched_vs_single` (coalescing), `plan_vs_tape`
//! (compiled inference plans), and `int8_vs_exact` (quantized plans must
//! at least match the exact plan they approximate) — on the same fixture
//! the serve benchmark uses, and fails (exit 1) if any falls below the
//! floor checked into `BENCH_serve.json`. Floors are deliberately
//! conservative next to the recorded figures, so machine noise doesn't
//! flake CI while a real regression (a plan silently falling back to the
//! tape, a batching pessimization, a quantized kernel slower than what it
//! replaces) still trips it.
//!
//! It also bounds the flight recorder (`obs_overhead_max` /
//! `obs_slowpath_max`, see [`check_obs_overhead`]), validates the
//! recorded multi-core `scaling` block (shape + single-thread floor +
//! the ≥1.5x@4t requirement when recorded on a ≥4-core host, see
//! [`check_scaling_artifact`]) with a live re-time of the 1-thread
//! ratio, and validates the recorded `BENCH_drift.json` (when present):
//! every schedule block must satisfy the floors the artifact itself
//! carries — zero monotonicity violations, zero bit mismatches, at least
//! one hot swap, and a bounded post-swap MAPE ratio. That check is pure
//! (no re-run; the live re-proof is the CI `selnet-drift --assert` smoke
//! job), so a hand-edited or stale artifact is caught cheaply.
//!
//! Run manually: `cargo run --release -p selnet-bench --bin serve_bench_guard`

use selnet_bench::driftbench::{check_drift_block, json_section, DriftFloors, ScheduleSpec};
use selnet_bench::servebench::{json_number, model_fixture, query_batch, time_ms, BATCH};
use selnet_core::{PartitionedSelNet, PlanPrecision};
use selnet_eval::SelectivityEstimator;
use selnet_serve::engine::{Engine, EngineConfig, Request};
use selnet_serve::registry::ModelRegistry;
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;

/// Validates the recorded `BENCH_drift.json` against the floors it
/// carries. Missing file = skip (the artifact is recorded by
/// `selnet-drift --scale full --out BENCH_drift.json`); a present but
/// invalid artifact fails the guard.
fn check_drift_artifact() -> Result<(), ()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_drift.json");
    let blob = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(_) => {
            eprintln!("serve_bench_guard: no BENCH_drift.json recorded; skipping drift floors");
            return Ok(());
        }
    };
    let mut floors = DriftFloors::default();
    if let Some(block) = json_section(&blob, "floors") {
        if let Some(v) = json_number(block, "max_monotonicity_violations") {
            floors.max_monotonicity_violations = v;
        }
        if let Some(v) = json_number(block, "max_bit_mismatches") {
            floors.max_bit_mismatches = v;
        }
        if let Some(v) = json_number(block, "min_hot_swaps") {
            floors.min_hot_swaps = v;
        }
        if let Some(v) = json_number(block, "max_post_swap_mape_ratio") {
            floors.max_post_swap_mape_ratio = v;
        }
        if let Some(v) = json_number(block, "min_queue_depth_samples") {
            floors.min_queue_depth_samples = v;
        }
    }
    let mut ok = true;
    for spec in ScheduleSpec::all() {
        let label = spec.label();
        let Some(block) = json_section(&blob, label) else {
            eprintln!("serve_bench_guard: FAIL BENCH_drift.json is missing the {label} block");
            ok = false;
            continue;
        };
        let failures = check_drift_block(block, &floors);
        for f in &failures {
            eprintln!("serve_bench_guard: FAIL drift[{label}]: {f}");
        }
        ok &= failures.is_empty();
    }
    if ok {
        println!("serve_bench_guard: drift floors OK (4 schedules)");
        Ok(())
    } else {
        Err(())
    }
}

/// Noise grace applied to the recorded `replay_1t_vs_current` ratio: the
/// floor is 1.0 (single-thread replay must not regress), but the ratio
/// compares two near-identical code paths, so a few percent of timing
/// noise on the recording host must not read as a regression.
const SCALING_NOISE_GRACE: f64 = 0.05;

/// Validates the recorded `scaling` block in `BENCH_serve.json`: the
/// 1/2/4/8-thread batched-replay entries must all be present and
/// positive, the recorded single-thread ratio must clear its floor (with
/// [`SCALING_NOISE_GRACE`]), and — when the block was recorded on a host
/// with ≥ 4 cores — the 4-thread speedup must reach 1.5x. Pure artifact
/// check (no re-run), same shape as [`check_drift_artifact`]: the live
/// re-proof of bit-identity is the test suite, and the live 1-thread
/// floor is re-timed in `main`.
fn check_scaling_artifact(blob: &str, floor_replay_1t: f64) -> Result<(), ()> {
    let Some(block) = json_section(blob, "scaling") else {
        eprintln!("serve_bench_guard: FAIL BENCH_serve.json is missing the scaling block");
        return Err(());
    };
    let mut ok = true;
    let mut entries = [0.0f64; 4];
    for (slot, t) in entries.iter_mut().zip([1usize, 2, 4, 8]) {
        let key = format!("batched_replay_{t}t_ms");
        match json_number(block, &key) {
            Some(v) if v > 0.0 => *slot = v,
            _ => {
                eprintln!("serve_bench_guard: FAIL scaling block lacks a positive {key}");
                ok = false;
            }
        }
    }
    let cpus = json_number(block, "machine_cpus").unwrap_or(0.0);
    if cpus < 1.0 {
        eprintln!("serve_bench_guard: FAIL scaling block lacks machine_cpus");
        ok = false;
    }
    let Some(speedup_4t) = json_number(block, "speedup_4t_vs_1t") else {
        eprintln!("serve_bench_guard: FAIL scaling block lacks speedup_4t_vs_1t");
        return Err(());
    };
    let Some(ratio_1t) = json_number(block, "replay_1t_vs_current") else {
        eprintln!("serve_bench_guard: FAIL scaling block lacks replay_1t_vs_current");
        return Err(());
    };
    if ok && entries[3] > 0.0 {
        // internal consistency: the recorded speedup must match the
        // recorded times (a hand-edited artifact shouldn't pass)
        let derived = entries[0] / entries[2];
        if (speedup_4t - derived).abs() > 0.1 * derived.max(speedup_4t) {
            eprintln!(
                "serve_bench_guard: FAIL scaling speedup_4t_vs_1t {speedup_4t:.2} \
                 inconsistent with recorded times (derived {derived:.2})"
            );
            ok = false;
        }
    }
    if ratio_1t < floor_replay_1t - SCALING_NOISE_GRACE {
        eprintln!(
            "serve_bench_guard: FAIL recorded replay_1t_vs_current {ratio_1t:.2} \
             < floor {floor_replay_1t:.2} - grace {SCALING_NOISE_GRACE:.2}"
        );
        ok = false;
    }
    if cpus >= 4.0 && speedup_4t < 1.5 {
        eprintln!(
            "serve_bench_guard: FAIL scaling speedup_4t_vs_1t {speedup_4t:.2} < 1.5 \
             on a {cpus:.0}-core recording host"
        );
        ok = false;
    }
    if ok {
        let scale_note = if cpus >= 4.0 {
            "4t floor enforced"
        } else {
            "recorded on < 4 cores; 4t floor not applicable"
        };
        println!(
            "serve_bench_guard: scaling block OK (1t ratio {ratio_1t:.2}, \
             4t speedup {speedup_4t:.2}, {scale_note})"
        );
        Ok(())
    } else {
        Err(())
    }
}

/// The observability overhead guards, timed as medians of per-round
/// paired ratios against an engine with every knob off —
/// frequency/thermal drift and scheduler luck are common-mode within a
/// round, so pairing cancels what independent timings cannot. Two
/// configurations, two floors:
///
/// * **armed** (`obs_overhead_max`, the ≤ 3% contract): span ring on,
///   slow-query log on at a tail-calibrated threshold no sub-millisecond
///   request crosses. This is what untraced production traffic pays with
///   the flight recorder fully armed — histograms, counters, batch-stage
///   spans, trace minting, and the per-request slow check. Per-request
///   spans are deliberately absent: those are sampled, paid only by
///   requests that bring a trace ID.
/// * **stress** (`obs_slowpath_max`): a 1µs threshold routes **every**
///   reply through the slow path (a bounded Mutex log push per request —
///   at 600k+ req/s, a rate no real threshold produces). Not part of the
///   3% contract, but bounded so the slow path can never silently grow a
///   syscall, an allocation, or an O(n) push.
fn check_obs_overhead(
    model: &PartitionedSelNet,
    xs: &[Vec<f32>],
    ts: &[f32],
    floor_armed: f64,
    floor_stress: f64,
) -> Result<(), ()> {
    let start = |slow_query_us: u64, trace_buffer: usize| {
        Engine::start(
            Arc::new(ModelRegistry::new(model.clone())),
            &EngineConfig {
                workers: 1,
                shards: 1,
                max_batch_rows: BATCH,
                cache_entries: 0,
                auto_batch_min_rows: 0,
                max_queue_rows: 0,
                slow_query_us,
                trace_buffer,
                replay_threads: 1,
            },
        )
    };
    let off = start(0, 0);
    let armed = start(50_000, 4096);
    let stress = start(1, 4096);

    let wave = |engine: &Arc<Engine<PartitionedSelNet>>| {
        let handles: Vec<_> = (0..BATCH)
            .map(|i| {
                engine
                    .submit(Request::new(xs[i].clone()).thresholds(vec![ts[i]]))
                    .expect("engine running")
            })
            .collect();
        for h in handles {
            black_box(h.wait().expect("served"));
        }
    };
    for _ in 0..8 {
        wave(&armed);
        wave(&stress);
        wave(&off);
    }
    let mut armed_ratios = Vec::with_capacity(48);
    let mut stress_ratios = Vec::with_capacity(48);
    for _ in 0..48 {
        let t_off = time_ms(1, 4, || wave(&off));
        armed_ratios.push(time_ms(1, 4, || wave(&armed)) / t_off);
        stress_ratios.push(time_ms(1, 4, || wave(&stress)) / t_off);
    }
    armed_ratios.sort_by(f64::total_cmp);
    stress_ratios.sort_by(f64::total_cmp);
    let m_armed = armed_ratios[armed_ratios.len() / 2];
    let m_stress = stress_ratios[stress_ratios.len() / 2];
    off.shutdown();
    armed.shutdown();
    stress.shutdown();
    println!(
        "serve_bench_guard: obs_overhead armed {m_armed:.4} (floor <= {floor_armed:.2}), \
         every-request-slow stress {m_stress:.4} (floor <= {floor_stress:.2})"
    );
    let mut ok = true;
    if m_armed > floor_armed {
        eprintln!("serve_bench_guard: FAIL obs overhead {m_armed:.4} > {floor_armed:.2}");
        ok = false;
    }
    if m_stress > floor_stress {
        eprintln!("serve_bench_guard: FAIL obs slow-path stress {m_stress:.4} > {floor_stress:.2}");
        ok = false;
    }
    if ok {
        Ok(())
    } else {
        Err(())
    }
}

fn main() -> ExitCode {
    let drift_ok = check_drift_artifact().is_ok();
    let floors_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let blob = match std::fs::read_to_string(floors_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve_bench_guard: cannot read {floors_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let floors = blob.find("\"floors\"").map(|i| &blob[i..]).unwrap_or("");
    let floor_batched = json_number(floors, "speedup_batched_vs_single").unwrap_or(2.0);
    let floor_plan = json_number(floors, "plan_vs_tape").unwrap_or(1.05);
    let floor_int8 = json_number(floors, "int8_vs_exact").unwrap_or(1.0);
    let floor_obs = json_number(floors, "obs_overhead_max").unwrap_or(1.03);
    let floor_slowpath = json_number(floors, "obs_slowpath_max").unwrap_or(1.25);
    let floor_replay_1t = json_number(floors, "replay_1t_vs_current").unwrap_or(1.0);
    let scaling_ok = check_scaling_artifact(&blob, floor_replay_1t).is_ok();

    eprintln!("serve_bench_guard: training fixture...");
    let (ds, model) = model_fixture();
    let (xs, ts) = query_batch(&ds, model.tmax());
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();

    let single = time_ms(8, 8, || {
        for i in 0..BATCH {
            black_box(model.estimate(&xs[i], ts[i]));
        }
    });
    let batched = time_ms(8, 8, || {
        black_box(model.predict_batch(&x_refs, &ts));
    });
    let tape_batched = time_ms(8, 8, || {
        black_box(model.tape_predict_batch(&x_refs, &ts));
    });
    // apples-to-apples for the quantization floor: the same `_into_at`
    // entry point at both precisions, lowering warmed off the clock. The
    // two precisions are timed back-to-back within each round and the
    // guard takes the median of the per-round ratios: frequency/thermal
    // drift and scheduler luck are common-mode within a round (the plans
    // even share the pooled buffer arena), so pairing cancels what
    // independent best-of-N timings of each precision cannot.
    let mut pout = Vec::with_capacity(BATCH);
    for _ in 0..64 {
        model.predict_batch_into_at(&x_refs, &ts, PlanPrecision::Exact, &mut pout);
        model.predict_batch_into_at(&x_refs, &ts, PlanPrecision::Int8, &mut pout);
    }
    let mut rounds = Vec::with_capacity(96);
    for _ in 0..96 {
        let e = time_ms(1, 5, || {
            model.predict_batch_into_at(&x_refs, &ts, PlanPrecision::Exact, &mut pout);
            black_box(pout.last().copied());
        });
        let q = time_ms(1, 5, || {
            model.predict_batch_into_at(&x_refs, &ts, PlanPrecision::Int8, &mut pout);
            black_box(pout.last().copied());
        });
        rounds.push((e, q));
    }
    let mut ratios: Vec<f64> = rounds.iter().map(|(e, q)| e / q).collect();
    ratios.sort_by(f64::total_cmp);
    let exact = rounds.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    let int8 = rounds.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);

    let speedup_batched = single / batched;
    let plan_vs_tape = tape_batched / batched;
    let int8_vs_exact = ratios[ratios.len() / 2];
    println!(
        "serve_bench_guard: single={single:.4}ms batched={batched:.4}ms \
         tape_batched={tape_batched:.4}ms exact={exact:.4}ms int8={int8:.4}ms \
         -> speedup_batched_vs_single={speedup_batched:.2} (floor {floor_batched:.2}), \
         plan_vs_tape={plan_vs_tape:.2} (floor {floor_plan:.2}), \
         int8_vs_exact={int8_vs_exact:.2} (floor {floor_int8:.2})"
    );

    // live single-thread floor for the chunked entry point: the paired
    // serial / 1-thread-chunked median on this machine (not just the
    // recorded artifact) — catches a plumbing regression the moment it
    // lands, with the same noise grace as the artifact check
    let mut replay_rounds = Vec::with_capacity(96);
    for _ in 0..96 {
        let serial = time_ms(1, 5, || {
            model.predict_batch_into_at(&x_refs, &ts, PlanPrecision::Exact, &mut pout);
            black_box(pout.last().copied());
        });
        let one_t = time_ms(1, 5, || {
            model.predict_batch_into_at_threaded(&x_refs, &ts, PlanPrecision::Exact, 1, &mut pout);
            black_box(pout.last().copied());
        });
        replay_rounds.push(serial / one_t);
    }
    replay_rounds.sort_by(f64::total_cmp);
    let live_replay_1t = replay_rounds[replay_rounds.len() / 2];
    println!(
        "serve_bench_guard: live replay_1t_vs_current={live_replay_1t:.4} \
         (floor {floor_replay_1t:.2} - grace {SCALING_NOISE_GRACE:.2})"
    );

    let mut ok = drift_ok && scaling_ok;
    if live_replay_1t < floor_replay_1t - SCALING_NOISE_GRACE {
        eprintln!(
            "serve_bench_guard: FAIL live replay_1t_vs_current {live_replay_1t:.2} \
             < floor {floor_replay_1t:.2} - grace {SCALING_NOISE_GRACE:.2}"
        );
        ok = false;
    }
    if speedup_batched < floor_batched {
        eprintln!(
            "serve_bench_guard: FAIL speedup_batched_vs_single {speedup_batched:.2} \
             < floor {floor_batched:.2}"
        );
        ok = false;
    }
    if plan_vs_tape < floor_plan {
        eprintln!("serve_bench_guard: FAIL plan_vs_tape {plan_vs_tape:.2} < floor {floor_plan:.2}");
        ok = false;
    }
    if int8_vs_exact < floor_int8 {
        eprintln!(
            "serve_bench_guard: FAIL int8_vs_exact {int8_vs_exact:.2} < floor {floor_int8:.2}"
        );
        ok = false;
    }
    ok &= check_obs_overhead(&model, &xs, &ts, floor_obs, floor_slowpath).is_ok();
    if ok {
        println!("serve_bench_guard: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
