//! CI bench-regression guard for the serving hot path.
//!
//! Re-times the two ratios the serving layer's performance story rests on
//! — `speedup_batched_vs_single` (coalescing) and `plan_vs_tape`
//! (compiled inference plans) — on the same fixture the serve benchmark
//! uses, and fails (exit 1) if either falls below the floor checked into
//! `BENCH_serve.json`. Floors are deliberately conservative next to the
//! recorded figures, so machine noise doesn't flake CI while a real
//! regression (a plan silently falling back to the tape, a batching
//! pessimization) still trips it.
//!
//! Run manually: `cargo run --release -p selnet-bench --bin serve_bench_guard`

use selnet_bench::servebench::{json_number, model_fixture, query_batch, time_ms, BATCH};
use selnet_eval::SelectivityEstimator;
use std::hint::black_box;
use std::process::ExitCode;

fn main() -> ExitCode {
    let floors_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let blob = match std::fs::read_to_string(floors_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve_bench_guard: cannot read {floors_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let floors = blob.find("\"floors\"").map(|i| &blob[i..]).unwrap_or("");
    let floor_batched = json_number(floors, "speedup_batched_vs_single").unwrap_or(2.0);
    let floor_plan = json_number(floors, "plan_vs_tape").unwrap_or(1.05);

    eprintln!("serve_bench_guard: training fixture...");
    let (ds, model) = model_fixture();
    let (xs, ts) = query_batch(&ds, model.tmax());
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();

    let single = time_ms(8, 8, || {
        for i in 0..BATCH {
            black_box(model.estimate(&xs[i], ts[i]));
        }
    });
    let batched = time_ms(8, 8, || {
        black_box(model.predict_batch(&x_refs, &ts));
    });
    let tape_batched = time_ms(8, 8, || {
        black_box(model.tape_predict_batch(&x_refs, &ts));
    });

    let speedup_batched = single / batched;
    let plan_vs_tape = tape_batched / batched;
    println!(
        "serve_bench_guard: single={single:.4}ms batched={batched:.4}ms \
         tape_batched={tape_batched:.4}ms -> speedup_batched_vs_single={speedup_batched:.2} \
         (floor {floor_batched:.2}), plan_vs_tape={plan_vs_tape:.2} (floor {floor_plan:.2})"
    );

    let mut ok = true;
    if speedup_batched < floor_batched {
        eprintln!(
            "serve_bench_guard: FAIL speedup_batched_vs_single {speedup_batched:.2} \
             < floor {floor_batched:.2}"
        );
        ok = false;
    }
    if plan_vs_tape < floor_plan {
        eprintln!("serve_bench_guard: FAIL plan_vs_tape {plan_vs_tape:.2} < floor {floor_plan:.2}");
        ok = false;
    }
    if ok {
        println!("serve_bench_guard: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
