//! Reproduces Table 5: empirical monotonicity (%) of every model on
//! face-cos — 200 queries × 100 thresholds, all C(100,2) pairs per query.

use selnet_bench::harness::{build_setting, train_models, ModelKind, Scale, Setting};
use selnet_eval::empirical_monotonicity;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    eprintln!(
        "[repro_monotonicity] setting=face-cos n={} queries={}",
        scale.n, scale.queries
    );
    let (ds, w) = build_setting(Setting::FaceCos, &scale);
    let models = train_models(&ModelKind::comparison_set(), &ds, &w, &scale);

    println!("## Table 5: empirical monotonicity (%) on face-cos");
    println!("{:<16} {:>12}", "Model", "Monotonic %");
    let mut csv = String::from("model,consistent,monotonicity_pct\n");
    for m in &models {
        let score = empirical_monotonicity(m.as_ref(), &w.test, 200, 100, w.tmax);
        let name = if m.guarantees_consistency() {
            format!("{} *", m.name())
        } else {
            m.name().into()
        };
        println!("{name:<16} {score:>12.2}");
        csv.push_str(&format!(
            "{},{},{}\n",
            m.name(),
            m.guarantees_consistency(),
            score
        ));
    }
    selnet_bench::harness::write_results("monotonicity_face-cos.csv", &csv);
}
