//! Reproduces Figure 5: estimator error over a stream of 100 update
//! operations (each ±5 records) on face-cos and fasttext-cos, with the
//! §5.4 incremental-learning rule deciding when to retrain.

use selnet_bench::harness::{build_setting, train_selnet_ct, Scale, Setting};
use selnet_core::UpdatePolicy;
use selnet_eval::evaluate;
use selnet_metric::DistanceKind;
use selnet_workload::{LabeledQuery, UpdateSimulator};

fn run_setting(setting: Setting, scale: &Scale, num_ops: usize) -> String {
    eprintln!("[repro_fig5] {}", setting.label());
    let (mut ds, w) = build_setting(setting, scale);
    let mut model = train_selnet_ct(&ds, &w, scale);
    let mut train = w.train.clone();
    let mut valid = w.valid.clone();
    let mut test = w.test.clone();
    let kind: DistanceKind = w.kind;

    let mut sim = UpdateSimulator::new(scale.seed ^ 0xf1f5);
    // tolerance relative to the trained model's validation MAE
    let policy = UpdatePolicy {
        mae_tolerance: (model.reference_val_mae() * 0.15).max(0.5),
        patience: 3,
        max_epochs: 10,
    };

    let mut csv = String::new();
    let m0 = evaluate(&model, &test);
    csv.push_str(&format!(
        "{},0,init,{},{},{}\n",
        setting.label(),
        m0.mse,
        m0.mape,
        0
    ));
    for op in 1..=num_ops {
        {
            let mut splits: Vec<&mut [LabeledQuery]> = vec![
                train.as_mut_slice(),
                valid.as_mut_slice(),
                test.as_mut_slice(),
            ];
            sim.step(&mut ds, &mut splits, kind);
        }
        let decision = model.check_and_update(&train, &valid, &policy);
        let m = evaluate(&model, &test);
        let retrained = usize::from(decision.retrained());
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            setting.label(),
            op,
            if retrained == 1 { "retrain" } else { "skip" },
            m.mse,
            m.mape,
            retrained
        ));
        if op % 10 == 0 {
            println!(
                "{} op {op:>3}: MSE {:>12.1}  MAPE {:>6.3}  ({})",
                setting.label(),
                m.mse,
                m.mape,
                if retrained == 1 {
                    "retrained"
                } else {
                    "skipped"
                }
            );
        }
    }
    csv
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let num_ops = if args.iter().any(|a| a == "--quick") {
        20
    } else {
        100
    };

    println!("## Figure 5: data update stream ({num_ops} ops, ±5 records each)");
    let mut csv = String::from("setting,op,action,mse,mape,retrained\n");
    for setting in [Setting::FaceCos, Setting::FasttextCos] {
        csv.push_str(&run_setting(setting, &scale, num_ops));
    }
    selnet_bench::harness::write_results("fig5_updates.csv", &csv);
}
