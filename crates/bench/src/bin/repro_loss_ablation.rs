//! Ablation of the §5.1 loss design: Huber vs L2 vs L1 on the log
//! residuals. The paper's claim: L2 over-fits large selectivities, L1
//! over-weights small ones, Huber-on-log balances both. MAPE exposes the
//! small-selectivity end, MSE the large end.

use selnet_bench::harness::{build_setting, selnet_config, Scale, Setting};
use selnet_core::{fit_named, LossKind};
use selnet_eval::evaluate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let (ds, w) = build_setting(Setting::FasttextCos, &scale);
    let variants = [
        ("Huber", LossKind::Huber),
        ("L2", LossKind::L2),
        ("L1", LossKind::L1),
    ];

    let mut results: Vec<Option<(&str, f64, f64, f64)>> = vec![None; variants.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(label, loss) in &variants {
            let (ds, w, scale) = (&ds, &w, &scale);
            handles.push(scope.spawn(move || {
                let cfg = selnet_config(scale).with_loss(loss);
                let (model, _) = fit_named(ds, w, &cfg, "SelNet-ct");
                let m = evaluate(&model, &w.valid);
                (label, m.mse, m.mae, m.mape)
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("thread"));
        }
    });

    println!("## Ablation: loss on log residuals (Huber vs L2 vs L1) on fasttext-cos (validation)");
    println!("{:<10} {:>14} {:>12} {:>10}", "Loss", "MSE", "MAE", "MAPE");
    let mut csv = String::from("loss,mse,mae,mape\n");
    for r in results.into_iter().flatten() {
        let (label, mse, mae, mape) = r;
        println!("{label:<10} {mse:>14.2} {mae:>12.2} {mape:>10.3}");
        csv.push_str(&format!("{label},{mse},{mae},{mape}\n"));
    }
    selnet_bench::harness::write_results("loss_ablation_fasttext-cos.csv", &csv);
}
