//! Scratch diagnostic: prints per-epoch train loss and validation MAE for
//! the SelNet variants (not part of the reproduction index).

use selnet_bench::harness::{build_setting, selnet_config, Scale, Setting};
use selnet_core::{fit_named, fit_partitioned, PartitionConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::from_args(&args);
    scale.n = 10_000;
    scale.dim = 16;
    scale.queries = 200;
    scale.w = 15;
    scale.epochs = 25;
    let (ds, w) = build_setting(Setting::FasttextCos, &scale);
    eprintln!("labels up to {}", ds.len() / 100);

    let cfg = selnet_config(&scale);
    let (_, rep) = fit_named(&ds, &w, &cfg, "SelNet-ct");
    println!("SelNet-ct:");
    for (i, (l, m)) in rep
        .epoch_train_loss
        .iter()
        .zip(&rep.epoch_val_mae)
        .enumerate()
    {
        println!("  epoch {i:>2}: train loss {l:.4}  val MAE {m:.2}");
    }

    let (_, rep) = fit_partitioned(&ds, &w, &cfg, &PartitionConfig::default());
    println!("SelNet (partitioned):");
    for (i, (l, m)) in rep
        .epoch_train_loss
        .iter()
        .zip(&rep.epoch_val_mae)
        .enumerate()
    {
        println!("  epoch {i:>2}: train loss {l:.4}  val MAE {m:.2}");
    }
}
