//! Ablation of the §5.2 design choice: `Norml2` vs `Softmax` normalization
//! of the τ increments. The paper argues softmax's exponential makes the
//! partition hypersensitive to small input changes; this bench measures
//! the consequence on fasttext-l2.

use selnet_bench::harness::{build_setting, selnet_config, Scale, Setting};
use selnet_core::{fit_named, TauNormalization};
use selnet_eval::evaluate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let (ds, w) = build_setting(Setting::FasttextL2, &scale);
    let variants = [
        ("Norml2", TauNormalization::Norml2),
        ("Softmax", TauNormalization::Softmax),
    ];

    let mut results: Vec<Option<(&str, f64, f64, f64)>> = vec![None; variants.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(label, norm) in &variants {
            let (ds, w, scale) = (&ds, &w, &scale);
            handles.push(scope.spawn(move || {
                let cfg = selnet_config(scale).with_tau_normalization(norm);
                let (model, _) = fit_named(ds, w, &cfg, "SelNet-ct");
                let m = evaluate(&model, &w.valid);
                (label, m.mse, m.mae, m.mape)
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("thread"));
        }
    });

    println!("## Ablation: tau normalization (Norml2 vs Softmax) on fasttext-l2 (validation)");
    println!("{:<10} {:>14} {:>12} {:>10}", "Norm", "MSE", "MAE", "MAPE");
    let mut csv = String::from("norm,mse,mae,mape\n");
    for r in results.into_iter().flatten() {
        let (label, mse, mae, mape) = r;
        println!("{label:<10} {mse:>14.2} {mae:>12.2} {mape:>10.3}");
        csv.push_str(&format!("{label},{mse},{mae},{mape}\n"));
    }
    selnet_bench::harness::write_results("tau_norm_fasttext-l2.csv", &csv);
}
