//! Reproduces Figure 3: fitting `y = exp(t)/10` on `t ∈ [0, 10]` with 8
//! control points — the SelNet head (learnable τ) vs the simplified-DLN
//! calibrator (fixed evenly-spaced τ). Prints both fitted curves and the
//! learned control points; the adaptive head should crowd its points into
//! the rapidly-changing region and achieve a far lower MSE (§6.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selnet_core::{fit_fixed_grid, fit_selnet_head};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let epochs = if quick { 1000 } else { 6000 };

    // 80 (t, f(t)) samples with t ~ U[0, 10], as in §6.2
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<(f32, f32)> = (0..80)
        .map(|_| {
            let t: f32 = rng.gen_range(0.0..10.0);
            (t, t.exp() / 10.0)
        })
        .collect();

    let adaptive = fit_selnet_head(&samples, 8, 10.0, epochs, 0.05, 1);
    let fixed = fit_fixed_grid(&samples, 8 + 2, 10.0, epochs, 0.05, 1);

    println!("## Figure 3: fitting y = exp(t)/10 with 8 control points");
    println!(
        "training MSE: our model {:.3}  |  simplified DLN {:.3}",
        adaptive.mse, fixed.mse
    );
    println!("\ncontrol points (our model):");
    for (tau, p) in adaptive.pwl.tau().iter().zip(adaptive.pwl.p()) {
        println!("  tau = {tau:>7.3}   p = {p:>10.3}");
    }
    println!("\ncontrol points (simplified DLN, fixed grid):");
    for (tau, p) in fixed.pwl.tau().iter().zip(fixed.pwl.p()) {
        println!("  tau = {tau:>7.3}   p = {p:>10.3}");
    }

    // curve series for plotting
    let mut csv = String::from("t,truth,selnet_head,dln_fixed\n");
    for i in 0..=100 {
        let t = 10.0 * i as f32 / 100.0;
        csv.push_str(&format!(
            "{t},{},{},{}\n",
            t.exp() / 10.0,
            adaptive.pwl.eval(t),
            fixed.pwl.eval(t)
        ));
    }
    selnet_bench::harness::write_results("fig3_exp_fit.csv", &csv);

    let interior = &adaptive.pwl.tau()[1..adaptive.pwl.tau().len() - 1];
    let crowded = interior.iter().filter(|&&t| t > 5.0).count();
    println!(
        "\n{}/{} interior control points are in the rapidly-changing half (t > 5)",
        crowded,
        interior.len()
    );
}
