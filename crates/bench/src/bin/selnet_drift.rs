//! `selnet-drift` — the drift-gauntlet runner.
//!
//! Streams §5.4 update operations under a drift schedule while serving
//! traffic through the multi-tenant engine, hot-swapping retrained
//! generations mid-stream, and records the accuracy-over-time series.
//!
//! ```text
//! selnet-drift [--scale tiny|full] [--schedule FAMILY|all] [--seed N]
//!              [--out PATH] [--assert]
//! ```
//!
//! * `--scale tiny` (default) is the seconds-scale deterministic run the
//!   CI smoke job uses; `--scale full` is the recorded benchmark.
//! * `--schedule` picks one family (`gradual`, `abrupt`, `cyclical`,
//!   `adversarial`) or `all` (default).
//! * `--out PATH` writes the `BENCH_drift.json` artifact.
//! * `--assert` exits non-zero unless every run satisfies the drift
//!   floors: zero monotonicity violations, zero bit mismatches, at least
//!   one hot swap, and post-swap MAPE within the configured ratio of the
//!   pre-drift MAPE.

use selnet_bench::driftbench::{
    render_drift_json, run_gauntlet, DriftFloors, GauntletConfig, GauntletResult, ScheduleSpec,
};
use std::process::ExitCode;

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        scale: "tiny".to_string(),
        schedules: ScheduleSpec::all().to_vec(),
        seed: None,
        out: None,
        assert: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale")?;
                if v != "tiny" && v != "full" {
                    return Err(format!("unknown scale {v:?} (tiny|full)"));
                }
                opts.scale = v;
            }
            "--schedule" => {
                let v = value("--schedule")?;
                opts.schedules = if v == "all" {
                    ScheduleSpec::all().to_vec()
                } else {
                    vec![ScheduleSpec::parse(&v).ok_or_else(|| format!("unknown schedule {v:?}"))?]
                };
            }
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?,
                );
            }
            "--out" => opts.out = Some(value("--out")?),
            "--assert" => opts.assert = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

struct Opts {
    scale: String,
    schedules: Vec<ScheduleSpec>,
    seed: Option<u64>,
    out: Option<String>,
    assert: bool,
}

fn report(r: &GauntletResult) {
    println!(
        "drift schedule={} ticks={} hot_swaps={} retrained={} skipped={} violations={} \
         mismatches={} shed={} pre_mape={:.4} post_swap_mape={:.4} final_mape={:.4} \
         ratio={:.3} mean_swap_ms={:.1}",
        r.schedule,
        r.ticks.len(),
        r.hot_swaps,
        r.retrains_applied,
        r.retrains_skipped,
        r.monotonicity_violations,
        r.bit_mismatches,
        r.shed_requests,
        r.pre_drift_mape,
        r.post_swap_mape,
        r.final_mape,
        r.mape_ratio(),
        r.mean_swap_ms(),
    );
    println!(
        "  queue_depth rows: p50={} p99={} max={} samples={}",
        r.queue_depth.quantile(0.50),
        r.queue_depth.quantile(0.99),
        r.queue_depth.max,
        r.queue_depth.count,
    );
    println!(
        "  swap latency us: p50={} p99={} max={} samples={}",
        r.swap_latency_us.quantile(0.50),
        r.swap_latency_us.quantile(0.99),
        r.swap_latency_us.max,
        r.swap_latency_us.count,
    );
    for (i, d) in r.decisions.iter().enumerate() {
        println!("  retrain[{i}] {d}");
    }
}

fn violations(r: &GauntletResult, floors: &DriftFloors) -> Vec<String> {
    let mut v = Vec::new();
    if r.monotonicity_violations as f64 > floors.max_monotonicity_violations {
        v.push(format!(
            "{} monotonicity violations (allowed {})",
            r.monotonicity_violations, floors.max_monotonicity_violations
        ));
    }
    if r.bit_mismatches as f64 > floors.max_bit_mismatches {
        v.push(format!(
            "{} bit mismatches (allowed {})",
            r.bit_mismatches, floors.max_bit_mismatches
        ));
    }
    if (r.hot_swaps as f64) < floors.min_hot_swaps {
        v.push(format!(
            "{} hot swaps (need >= {})",
            r.hot_swaps, floors.min_hot_swaps
        ));
    }
    if r.mape_ratio() > floors.max_post_swap_mape_ratio {
        v.push(format!(
            "post-swap MAPE ratio {:.3} (allowed {})",
            r.mape_ratio(),
            floors.max_post_swap_mape_ratio
        ));
    }
    if (r.queue_depth.count as f64) < floors.min_queue_depth_samples {
        v.push(format!(
            "{} queue-depth samples (need >= {})",
            r.queue_depth.count, floors.min_queue_depth_samples
        ));
    }
    if (r.swap_latency_us.count as f64) < floors.min_hot_swaps {
        v.push(format!(
            "{} retrain-latency samples (need >= {}: every publish must land in the histogram)",
            r.swap_latency_us.count, floors.min_hot_swaps
        ));
    }
    v
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("selnet-drift: {e}");
            return ExitCode::FAILURE;
        }
    };
    let floors = DriftFloors::default();
    let mut results = Vec::new();
    let mut failed = false;
    for spec in &opts.schedules {
        let mut cfg = if opts.scale == "full" {
            GauntletConfig::full(*spec)
        } else {
            GauntletConfig::tiny(*spec)
        };
        if let Some(seed) = opts.seed {
            cfg.seed = seed;
        }
        let result = run_gauntlet(&cfg);
        report(&result);
        if opts.assert {
            for v in violations(&result, &floors) {
                eprintln!("selnet-drift: FLOOR VIOLATED [{}]: {v}", result.schedule);
                failed = true;
            }
        }
        results.push(result);
    }
    if let Some(path) = &opts.out {
        let blob = render_drift_json(&results, &opts.scale);
        if let Err(e) = std::fs::write(path, blob) {
            eprintln!("selnet-drift: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("drift gauntlet OK ({} schedules)", results.len());
        ExitCode::SUCCESS
    }
}
