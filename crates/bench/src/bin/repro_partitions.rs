//! Reproduces Table 9: error & estimation time vs partition size `K` on
//! fasttext-l2 (paper sweeps K ∈ {1, 3, 6, 9}; K = 1 is SelNet-ct).

use selnet_bench::harness::{build_setting, partition_config, selnet_config, Scale, Setting};
use selnet_core::{fit_named, fit_partitioned};
use selnet_eval::{average_estimate_ms, evaluate, SelectivityEstimator};

/// One sweep row: `(k, mse, mae, mape, avg_estimate_ms)`.
type SweepRow = (usize, f64, f64, f64, f64);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let (ds, w) = build_setting(Setting::FasttextL2, &scale);
    let ks = [1usize, 3, 6, 9];

    let mut results: Vec<Option<SweepRow>> = vec![None; ks.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &k in &ks {
            let ds = &ds;
            let w = &w;
            let scale = &scale;
            handles.push(scope.spawn(move || {
                let model: Box<dyn SelectivityEstimator + Send + Sync> = if k == 1 {
                    Box::new(fit_named(ds, w, &selnet_config(scale), "SelNet-ct").0)
                } else {
                    let mut pcfg = partition_config(scale);
                    pcfg.k = k;
                    Box::new(fit_partitioned(ds, w, &selnet_config(scale), &pcfg).0)
                };
                let m = evaluate(model.as_ref(), &w.valid);
                let ms = average_estimate_ms(model.as_ref(), &w.test, 1500);
                (k, m.mse, m.mae, m.mape, ms)
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("sweep thread panicked"));
        }
    });

    println!("## Table 9: errors vs partition size on fasttext-l2 (validation)");
    println!(
        "{:<10} {:>14} {:>12} {:>10} {:>14}",
        "K", "MSE", "MAE", "MAPE", "Est. time (ms)"
    );
    let mut csv = String::from("partitions,mse,mae,mape,estimate_ms\n");
    for r in results.into_iter().flatten() {
        let (k, mse, mae, mape, ms) = r;
        println!("{k:<10} {mse:>14.2} {mae:>12.2} {mape:>10.3} {ms:>14.3}");
        csv.push_str(&format!("{k},{mse},{mae},{mape},{ms}\n"));
    }
    selnet_bench::harness::write_results("partitions_fasttext-l2.csv", &csv);
}
