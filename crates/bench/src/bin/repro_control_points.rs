//! Reproduces Table 8: error vs. number of control points `L` on
//! fasttext-l2 (paper sweeps L ∈ {10, 50, 90, 130}).

use selnet_bench::harness::{build_setting, selnet_config, Scale, Setting};
use selnet_core::fit_named;
use selnet_eval::evaluate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let (ds, w) = build_setting(Setting::FasttextL2, &scale);
    let ls = [10usize, 50, 90, 130];

    let mut results: Vec<Option<(usize, f64, f64, f64)>> = vec![None; ls.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &l in &ls {
            let ds = &ds;
            let w = &w;
            let scale = &scale;
            handles.push(scope.spawn(move || {
                let mut cfg = selnet_config(scale);
                cfg.control_points = l;
                let (model, _) = fit_named(ds, w, &cfg, "SelNet-ct");
                let m = evaluate(&model, &w.valid);
                (l, m.mse, m.mae, m.mape)
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("sweep thread panicked"));
        }
    });

    println!("## Table 8: errors vs number of control points on fasttext-l2 (validation)");
    println!("{:<10} {:>14} {:>12} {:>10}", "L", "MSE", "MAE", "MAPE");
    let mut csv = String::from("control_points,mse,mae,mape\n");
    for r in results.into_iter().flatten() {
        let (l, mse, mae, mape) = r;
        println!("{l:<10} {mse:>14.2} {mae:>12.2} {mape:>10.3}");
        csv.push_str(&format!("{l},{mse},{mae},{mape}\n"));
    }
    selnet_bench::harness::write_results("control_points_fasttext-l2.csv", &csv);
}
