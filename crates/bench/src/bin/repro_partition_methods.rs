//! Reproduces Table 10: cover-tree (CT) vs random (RP) vs k-means (KM)
//! partitioning at K = 3 on fasttext-l2.

use selnet_bench::harness::{build_setting, partition_config, selnet_config, Scale, Setting};
use selnet_core::fit_partitioned;
use selnet_eval::evaluate;
use selnet_index::PartitionMethod;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let (ds, w) = build_setting(Setting::FasttextL2, &scale);
    let methods = [
        ("CT", PartitionMethod::CoverTree { ratio: 0.05 }),
        ("RP", PartitionMethod::Random),
        ("KM", PartitionMethod::KMeans),
    ];

    let mut results: Vec<Option<(&str, f64, f64, f64)>> = vec![None; methods.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(label, method) in &methods {
            let ds = &ds;
            let w = &w;
            let scale = &scale;
            handles.push(scope.spawn(move || {
                let mut pcfg = partition_config(scale);
                pcfg.method = method;
                let (model, _) = fit_partitioned(ds, w, &selnet_config(scale), &pcfg);
                let m = evaluate(&model, &w.test);
                (label, m.mse, m.mae, m.mape)
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("sweep thread panicked"));
        }
    });

    println!("## Table 10: errors vs partitioning method (K=3) on fasttext-l2 (test)");
    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "Method", "MSE", "MAE", "MAPE"
    );
    let mut csv = String::from("method,mse,mae,mape\n");
    for r in results.into_iter().flatten() {
        let (label, mse, mae, mape) = r;
        println!("{label:<10} {mse:>14.2} {mae:>12.2} {mape:>10.3}");
        csv.push_str(&format!("{label},{mse},{mae},{mape}\n"));
    }
    selnet_bench::harness::write_results("partition_methods_fasttext-l2.csv", &csv);
}
