//! Reproduces Tables 1–4 (and Table 11 with `--thresholds beta`): accuracy
//! of all ten models on one evaluation setting.
//!
//! ```text
//! cargo run --release -p selnet-bench --bin repro_accuracy -- \
//!     --setting fasttext-cos [--thresholds beta] [--quick] [--n 30000] ...
//! ```

use selnet_bench::harness::{build_setting, train_models, ModelKind, Scale, Setting};
use selnet_eval::{accuracy_csv, evaluate, render_accuracy_table, AccuracyRow};
use selnet_workload::ThresholdScheme;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let setting = args
        .iter()
        .position(|a| a == "--setting")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| Setting::parse(s))
        .unwrap_or(Setting::FasttextCos);
    let scale = Scale::from_args(&args);
    let beta = matches!(scale.scheme, ThresholdScheme::Beta { .. });

    eprintln!(
        "[repro_accuracy] setting={} n={} dim={} queries={} w={} epochs={} beta={}",
        setting.label(),
        scale.n,
        scale.dim,
        scale.queries,
        scale.w,
        scale.epochs,
        beta,
    );
    let t0 = std::time::Instant::now();
    let (ds, w) = build_setting(setting, &scale);
    eprintln!(
        "[repro_accuracy] dataset {}x{}, {} train / {} valid / {} test queries, tmax={:.4} ({:.1}s)",
        ds.len(),
        ds.dim(),
        w.train.len(),
        w.valid.len(),
        w.test.len(),
        w.tmax,
        t0.elapsed().as_secs_f64()
    );

    let models = train_models(&ModelKind::comparison_set(), &ds, &w, &scale);
    eprintln!(
        "[repro_accuracy] trained {} models in {:.1}s",
        models.len(),
        t0.elapsed().as_secs_f64()
    );

    let rows: Vec<AccuracyRow> = models
        .iter()
        .map(|m| AccuracyRow {
            model: m.name().to_string(),
            consistent: m.guarantees_consistency(),
            valid: evaluate(m.as_ref(), &w.valid),
            test: evaluate(m.as_ref(), &w.test),
        })
        .collect();

    let table_no = match (setting, beta) {
        (Setting::FasttextCos, false) => "Table 1",
        (Setting::FasttextL2, false) => "Table 2",
        (Setting::FaceCos, false) => "Table 3",
        (Setting::YoutubeCos, false) => "Table 4",
        (Setting::FasttextCos, true) => "Table 11",
        _ => "accuracy",
    };
    // scale factors mirror the paper's column headers, adapted to our
    // smaller label range
    let mse_scale =
        10f64.powi((rows.iter().map(|r| r.test.mse).fold(1.0, f64::max)).log10() as i32);
    let mae_scale =
        10f64.powi((rows.iter().map(|r| r.test.mae).fold(1.0, f64::max)).log10() as i32);
    let title = format!(
        "{table_no}: accuracy on {}{}",
        setting.label(),
        if beta {
            " (Beta(3,2.5) thresholds)"
        } else {
            ""
        }
    );
    println!(
        "{}",
        render_accuracy_table(&title, &rows, mse_scale, mae_scale)
    );

    let suffix = if beta { "_beta" } else { "" };
    selnet_bench::harness::write_results(
        &format!("accuracy_{}{}.csv", setting.label(), suffix),
        &accuracy_csv(&rows),
    );
}
