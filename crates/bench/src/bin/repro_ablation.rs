//! Reproduces Table 6: the ablation study — SelNet vs SelNet-ct (no
//! partitioning) vs SelNet-ad-ct (no query-dependent τ) on all four
//! settings.

use selnet_bench::harness::{build_setting, train_models, ModelKind, Scale, Setting};
use selnet_eval::{evaluate, render_accuracy_table, AccuracyRow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let settings = [
        Setting::FasttextCos,
        Setting::FasttextL2,
        Setting::FaceCos,
        Setting::YoutubeCos,
    ];
    let mut csv =
        String::from("setting,model,mse_valid,mse_test,mae_valid,mae_test,mape_valid,mape_test\n");
    println!("## Table 6: ablation study");
    for setting in settings {
        eprintln!("[repro_ablation] {}", setting.label());
        let (ds, w) = build_setting(setting, &scale);
        let models = train_models(&ModelKind::ablation_set(), &ds, &w, &scale);
        let rows: Vec<AccuracyRow> = models
            .iter()
            .map(|m| AccuracyRow {
                model: m.name().to_string(),
                consistent: true,
                valid: evaluate(m.as_ref(), &w.valid),
                test: evaluate(m.as_ref(), &w.test),
            })
            .collect();
        let mse_scale =
            10f64.powi((rows.iter().map(|r| r.test.mse).fold(1.0, f64::max)).log10() as i32);
        let mae_scale =
            10f64.powi((rows.iter().map(|r| r.test.mae).fold(1.0, f64::max)).log10() as i32);
        println!(
            "{}",
            render_accuracy_table(setting.label(), &rows, mse_scale, mae_scale)
        );
        for r in &rows {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                setting.label(),
                r.model,
                r.valid.mse,
                r.test.mse,
                r.valid.mae,
                r.test.mae,
                r.valid.mape,
                r.test.mape
            ));
        }
    }
    selnet_bench::harness::write_results("ablation.csv", &csv);
}
