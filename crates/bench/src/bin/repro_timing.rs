//! Reproduces Table 7: average single-query estimation time (ms) of every
//! model on every setting (the SelNet variants included, like the paper).

use selnet_bench::harness::{build_setting, train_model, ModelKind, Scale, Setting};
use selnet_eval::average_estimate_ms;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let settings = [
        Setting::FaceCos,
        Setting::FasttextCos,
        Setting::FasttextL2,
        Setting::YoutubeCos,
    ];
    let kinds = [
        ModelKind::Lsh,
        ModelKind::Kde,
        ModelKind::LightGbm,
        ModelKind::LightGbmM,
        ModelKind::Dnn,
        ModelKind::Moe,
        ModelKind::Rmi,
        ModelKind::Dln,
        ModelKind::Umnn,
        ModelKind::SelNet,
        ModelKind::SelNetCt,
        ModelKind::SelNetAdCt,
    ];

    // rows[model][setting]
    let mut cells: Vec<Vec<Option<f64>>> = vec![vec![None; settings.len()]; kinds.len()];
    let mut names: Vec<String> = kinds.iter().map(|k| format!("{k:?}")).collect();
    for (si, &setting) in settings.iter().enumerate() {
        eprintln!("[repro_timing] {}", setting.label());
        let (ds, w) = build_setting(setting, &scale);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &kind in &kinds {
                let ds = &ds;
                let w = &w;
                let scale = &scale;
                handles.push(scope.spawn(move || {
                    train_model(kind, ds, w, scale).map(|m| {
                        let ms = average_estimate_ms(m.as_ref(), &w.test, 2000);
                        (m.name().to_string(), ms)
                    })
                }));
            }
            for (mi, h) in handles.into_iter().enumerate() {
                if let Some((name, ms)) = h.join().expect("timing thread panicked") {
                    names[mi] = name;
                    cells[mi][si] = Some(ms);
                }
            }
        });
    }

    println!("## Table 7: average estimation time (milliseconds)");
    print!("{:<16}", "Model");
    for s in &settings {
        print!(" {:>14}", s.label());
    }
    println!();
    let mut csv = String::from("model,face-cos,fasttext-cos,fasttext-l2,youtube-cos\n");
    for (mi, name) in names.iter().enumerate() {
        print!("{name:<16}");
        csv.push_str(name);
        for cell in &cells[mi] {
            match *cell {
                Some(ms) => {
                    print!(" {ms:>14.3}");
                    csv.push_str(&format!(",{ms}"));
                }
                None => {
                    print!(" {:>14}", "-");
                    csv.push(',');
                }
            }
        }
        println!();
        csv.push('\n');
    }
    selnet_bench::harness::write_results("timing.csv", &csv);
}
