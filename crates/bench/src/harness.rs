//! Shared experiment harness: dataset settings, model zoo, CLI parsing,
//! and CSV output. Every `repro_*` binary builds on this module.

use selnet_baselines::{
    GbdtConfig, GbdtEstimator, KdeConfig, KdeEstimator, LshConfig, LshEstimator,
};
use selnet_core::{
    fit_named, fit_partitioned, PartitionConfig, PartitionedSelNet, SelNetConfig, SelNetModel,
};
use selnet_data::generators::{face_like, fasttext_like, youtube_like, GeneratorConfig};
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_metric::DistanceKind;
use selnet_models::{
    DlnConfig, DlnEstimator, DnnEstimator, MoeConfig, MoeEstimator, NeuralConfig, RmiConfig,
    RmiEstimator, UmnnConfig, UmnnEstimator,
};
use selnet_workload::{generate_workload, ThresholdScheme, Workload, WorkloadConfig};
use std::path::Path;

/// The four evaluation settings of §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Setting {
    /// fasttext-like embeddings, cosine distance.
    FasttextCos,
    /// fasttext-like embeddings, Euclidean distance.
    FasttextL2,
    /// face-like embeddings, cosine distance.
    FaceCos,
    /// YouTube-like embeddings, cosine distance.
    YoutubeCos,
}

impl Setting {
    /// Parses a CLI label like `fasttext-cos`.
    pub fn parse(s: &str) -> Option<Setting> {
        match s {
            "fasttext-cos" => Some(Setting::FasttextCos),
            "fasttext-l2" => Some(Setting::FasttextL2),
            "face-cos" => Some(Setting::FaceCos),
            "youtube-cos" => Some(Setting::YoutubeCos),
            _ => None,
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Setting::FasttextCos => "fasttext-cos",
            Setting::FasttextL2 => "fasttext-l2",
            Setting::FaceCos => "face-cos",
            Setting::YoutubeCos => "youtube-cos",
        }
    }

    /// Distance function of the setting.
    pub fn kind(self) -> DistanceKind {
        match self {
            Setting::FasttextL2 => DistanceKind::Euclidean,
            _ => DistanceKind::Cosine,
        }
    }
}

/// Scale knobs for an experiment run (paper scale is reachable by raising
/// these; defaults are CPU-friendly, see DESIGN.md §1).
#[derive(Clone, Debug)]
pub struct Scale {
    /// Database size.
    pub n: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Mixture components in the generator.
    pub clusters: usize,
    /// Number of query objects.
    pub queries: usize,
    /// Thresholds per query (`w`).
    pub w: usize,
    /// Training epochs for learned models.
    pub epochs: usize,
    /// Seed for everything.
    pub seed: u64,
    /// Threshold scheme.
    pub scheme: ThresholdScheme,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            n: 20_000,
            dim: 24,
            clusters: 16,
            queries: 500,
            w: 20,
            epochs: 25,
            seed: 7,
            scheme: ThresholdScheme::GeometricSelectivity,
        }
    }
}

impl Scale {
    /// A fast scale for smoke-testing the harness.
    pub fn quick() -> Self {
        Scale {
            n: 4000,
            dim: 12,
            clusters: 8,
            queries: 120,
            w: 10,
            epochs: 8,
            ..Default::default()
        }
    }

    /// Parses CLI overrides like `--n 30000 --queries 800 --quick`.
    pub fn from_args(args: &[String]) -> Scale {
        let mut scale = if args.iter().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut next_usize = |field: &mut usize| {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    *field = v;
                }
            };
            match a.as_str() {
                "--n" => next_usize(&mut scale.n),
                "--dim" => next_usize(&mut scale.dim),
                "--clusters" => next_usize(&mut scale.clusters),
                "--queries" => next_usize(&mut scale.queries),
                "--w" => next_usize(&mut scale.w),
                "--epochs" => next_usize(&mut scale.epochs),
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        scale.seed = v;
                    }
                }
                "--thresholds" => {
                    if let Some(v) = it.next() {
                        if v == "beta" {
                            scale.scheme = ThresholdScheme::Beta {
                                alpha: 3.0,
                                beta: 2.5,
                            };
                        }
                    }
                }
                _ => {}
            }
        }
        scale
    }
}

/// Builds the dataset for a setting.
pub fn build_dataset(setting: Setting, scale: &Scale) -> Dataset {
    let cfg = GeneratorConfig::new(scale.n, scale.dim, scale.clusters, scale.seed);
    match setting {
        Setting::FasttextCos | Setting::FasttextL2 => fasttext_like(&cfg),
        Setting::FaceCos => face_like(&cfg),
        Setting::YoutubeCos => {
            // YouTube is the very-high-dimension setting: double the dims
            let cfg = GeneratorConfig::new(scale.n, scale.dim * 2, scale.clusters, scale.seed);
            youtube_like(&cfg)
        }
    }
}

/// Builds dataset + labeled workload for a setting.
pub fn build_setting(setting: Setting, scale: &Scale) -> (Dataset, Workload) {
    let ds = build_dataset(setting, scale);
    let wcfg = WorkloadConfig {
        num_queries: scale.queries,
        thresholds_per_query: scale.w,
        kind: setting.kind(),
        scheme: scale.scheme,
        seed: scale.seed ^ 0x776f_726b, // "work"
        threads: 0,
    };
    let w = generate_workload(&ds, &wcfg);
    (ds, w)
}

/// All model kinds of the paper's comparison (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// LSH importance sampling (cosine only).
    Lsh,
    /// Metric-space KDE.
    Kde,
    /// Gradient-boosted trees.
    LightGbm,
    /// Gradient-boosted trees with monotone constraint.
    LightGbmM,
    /// Vanilla deep regression.
    Dnn,
    /// Mixture of Experts.
    Moe,
    /// Recursive Model Index.
    Rmi,
    /// Deep Lattice Network.
    Dln,
    /// Unconstrained Monotonic NN.
    Umnn,
    /// Full partitioned SelNet.
    SelNet,
    /// SelNet without partitioning.
    SelNetCt,
    /// SelNet-ct without query-dependent τ.
    SelNetAdCt,
}

impl ModelKind {
    /// The paper's main comparison set (Tables 1–4).
    pub fn comparison_set() -> Vec<ModelKind> {
        vec![
            ModelKind::Lsh,
            ModelKind::Kde,
            ModelKind::LightGbm,
            ModelKind::LightGbmM,
            ModelKind::Dnn,
            ModelKind::Moe,
            ModelKind::Rmi,
            ModelKind::Dln,
            ModelKind::Umnn,
            ModelKind::SelNet,
        ]
    }

    /// The ablation set (Table 6).
    pub fn ablation_set() -> Vec<ModelKind> {
        vec![
            ModelKind::SelNet,
            ModelKind::SelNetCt,
            ModelKind::SelNetAdCt,
        ]
    }
}

/// Neural config derived from the scale.
pub fn neural_config(scale: &Scale) -> NeuralConfig {
    NeuralConfig {
        epochs: scale.epochs,
        seed: scale.seed,
        ..NeuralConfig::default()
    }
}

/// SelNet config derived from the scale.
pub fn selnet_config(scale: &Scale) -> SelNetConfig {
    SelNetConfig {
        epochs: scale.epochs,
        seed: scale.seed,
        ae_pretrain_epochs: (scale.epochs / 4).max(2),
        ..SelNetConfig::default()
    }
}

/// Trains one model; returns `None` when the model does not apply to the
/// setting (LSH under Euclidean distance, like the paper's Table 2).
pub fn train_model(
    kind: ModelKind,
    ds: &Dataset,
    w: &Workload,
    scale: &Scale,
) -> Option<Box<dyn SelectivityEstimator + Send + Sync>> {
    let ncfg = neural_config(scale);
    Some(match kind {
        ModelKind::Lsh => {
            if w.kind != DistanceKind::Cosine {
                return None;
            }
            // the paper's absolute budget of 2000 samples is 0.2% of its
            // 1M-vector datasets; keep the *relative* budget comparable
            let budget = sample_budget(ds.len());
            Box::new(LshEstimator::fit(
                ds,
                &LshConfig {
                    sample_budget: budget,
                    seed: scale.seed,
                    ..Default::default()
                },
            ))
        }
        // KDE keeps the paper's absolute 2000-sample budget (its error
        // comes from smoothing, not sampling); LSH keeps a *relative*
        // budget so it stays in the sampling-error regime (see DESIGN.md)
        ModelKind::Kde => Box::new(KdeEstimator::fit(
            ds,
            w.kind,
            &KdeConfig {
                seed: scale.seed,
                ..Default::default()
            },
        )),
        ModelKind::LightGbm => Box::new(GbdtEstimator::fit(
            ds,
            &w.train,
            w.kind,
            &GbdtConfig {
                seed: scale.seed,
                ..Default::default()
            },
        )),
        ModelKind::LightGbmM => Box::new(GbdtEstimator::fit(
            ds,
            &w.train,
            w.kind,
            &GbdtConfig {
                monotone_t: true,
                seed: scale.seed,
                ..Default::default()
            },
        )),
        ModelKind::Dnn => Box::new(DnnEstimator::fit(ds, w, &ncfg)),
        ModelKind::Moe => Box::new(MoeEstimator::fit(
            ds,
            w,
            &MoeConfig {
                base: ncfg,
                ..Default::default()
            },
        )),
        ModelKind::Rmi => Box::new(RmiEstimator::fit(
            ds,
            w,
            &RmiConfig {
                base: ncfg,
                ..Default::default()
            },
        )),
        ModelKind::Dln => Box::new(DlnEstimator::fit(
            ds,
            w,
            &DlnConfig {
                base: ncfg,
                ..Default::default()
            },
        )),
        ModelKind::Umnn => Box::new(UmnnEstimator::fit(
            ds,
            w,
            &UmnnConfig {
                base: ncfg,
                ..Default::default()
            },
        )),
        ModelKind::SelNet => {
            let (m, _) = fit_partitioned(ds, w, &selnet_config(scale), &partition_config(scale));
            Box::new(m)
        }
        ModelKind::SelNetCt => {
            let (m, _) = fit_named(ds, w, &selnet_config(scale), "SelNet-ct");
            Box::new(m)
        }
        ModelKind::SelNetAdCt => {
            let cfg = selnet_config(scale).without_adaptive_tau();
            let (m, _) = fit_named(ds, w, &cfg, "SelNet-ad-ct");
            Box::new(m)
        }
    })
}

/// Sampling budget for the LSH/KDE baselines: the paper's 2000 samples on
/// 1M vectors is 0.2%; we keep 1% (generous) with a floor of 150.
pub fn sample_budget(n: usize) -> usize {
    (n / 100).max(150)
}

/// Partition config derived from the scale.
pub fn partition_config(scale: &Scale) -> PartitionConfig {
    PartitionConfig {
        pretrain_epochs: (scale.epochs / 4).max(2),
        ..Default::default()
    }
}

/// Trains many models concurrently (one thread per model).
pub fn train_models(
    kinds: &[ModelKind],
    ds: &Dataset,
    w: &Workload,
    scale: &Scale,
) -> Vec<Box<dyn SelectivityEstimator + Send + Sync>> {
    let mut out: Vec<Option<Box<dyn SelectivityEstimator + Send + Sync>>> =
        Vec::with_capacity(kinds.len());
    for _ in kinds {
        out.push(None);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &kind in kinds {
            handles.push(scope.spawn(move || train_model(kind, ds, w, scale)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = h.join().expect("training thread panicked");
        }
    });
    out.into_iter().flatten().collect()
}

/// Trains a standalone SelNet variant (typed accessors for the
/// figure/sweep binaries).
pub fn train_selnet_ct(ds: &Dataset, w: &Workload, scale: &Scale) -> SelNetModel {
    fit_named(ds, w, &selnet_config(scale), "SelNet-ct").0
}

/// Trains the full partitioned SelNet.
pub fn train_selnet(ds: &Dataset, w: &Workload, scale: &Scale) -> PartitionedSelNet {
    fit_partitioned(ds, w, &selnet_config(scale), &partition_config(scale)).0
}

/// Writes a CSV artifact under `results/`.
pub fn write_results(name: &str, contents: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[results written to {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setting_parsing_roundtrip() {
        for s in [
            Setting::FasttextCos,
            Setting::FasttextL2,
            Setting::FaceCos,
            Setting::YoutubeCos,
        ] {
            assert_eq!(Setting::parse(s.label()), Some(s));
        }
        assert_eq!(Setting::parse("nope"), None);
    }

    #[test]
    fn scale_cli_overrides() {
        let args: Vec<String> = ["--n", "1234", "--queries", "55", "--thresholds", "beta"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = Scale::from_args(&args);
        assert_eq!(s.n, 1234);
        assert_eq!(s.queries, 55);
        assert!(matches!(s.scheme, ThresholdScheme::Beta { .. }));
    }

    #[test]
    fn lsh_skipped_under_euclidean() {
        let scale = Scale {
            n: 300,
            dim: 6,
            clusters: 3,
            queries: 12,
            w: 5,
            epochs: 1,
            ..Scale::quick()
        };
        let (ds, w) = build_setting(Setting::FasttextL2, &scale);
        assert!(train_model(ModelKind::Lsh, &ds, &w, &scale).is_none());
    }
}
