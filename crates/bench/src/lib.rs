//! # selnet-bench
//!
//! The benchmark harness of the SelNet reproduction. One `repro_*` binary
//! per table/figure of the paper (see `DESIGN.md` §3 for the index), plus
//! Criterion microbenchmarks (`cargo bench -p selnet-bench`).

#![warn(missing_docs)]

pub mod driftbench;
pub mod harness;
pub mod servebench;
