//! Serving-path benchmarks: one-query-per-tape-call vs the batched
//! coalesced entry point (`predict_batch`) vs the full engine
//! (queue + workers + cache), all on the same trained partitioned model.
//!
//! With `SELNET_BENCH_RECORD=1` the run re-times the key comparisons with
//! a plain `Instant` loop and rewrites `BENCH_serve.json` at the repo
//! root. See `crates/bench/README.md` for the workflow.

use criterion::{criterion_group, criterion_main, Criterion};
use selnet_core::{fit_partitioned, PartitionConfig, PartitionedSelNet, SelNetConfig};
use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_data::Dataset;
use selnet_eval::SelectivityEstimator;
use selnet_metric::DistanceKind;
use selnet_serve::engine::{Engine, EngineConfig};
use selnet_serve::registry::ModelRegistry;
use selnet_workload::{generate_workload, WorkloadConfig};
use std::hint::black_box;
use std::sync::Arc;

/// Bench batch size — the acceptance point for coalescing throughput.
const BATCH: usize = 64;

fn model_fixture() -> (Dataset, PartitionedSelNet) {
    let ds = fasttext_like(&GeneratorConfig::new(600, 5, 3, 7));
    let mut wcfg = WorkloadConfig::new(24, DistanceKind::Euclidean, 8);
    wcfg.thresholds_per_query = 8;
    let w = generate_workload(&ds, &wcfg);
    let mut cfg = SelNetConfig::tiny();
    cfg.epochs = 3;
    let pcfg = PartitionConfig {
        k: 3,
        pretrain_epochs: 1,
        ..Default::default()
    };
    let (model, _) = fit_partitioned(&ds, &w, &cfg, &pcfg);
    (ds, model)
}

/// `BATCH` distinct `(x, t)` queries spread over the database and the
/// threshold range.
fn query_batch(ds: &Dataset, tmax: f32) -> (Vec<Vec<f32>>, Vec<f32>) {
    let xs: Vec<Vec<f32>> = (0..BATCH)
        .map(|i| ds.row(i * 7 % ds.len()).to_vec())
        .collect();
    let ts: Vec<f32> = (0..BATCH)
        .map(|i| tmax * (0.1 + 0.9 * i as f32 / BATCH as f32))
        .collect();
    (xs, ts)
}

fn bench_serve_throughput(c: &mut Criterion) {
    let (ds, model) = model_fixture();
    let (xs, ts) = query_batch(&ds, model.tmax());
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    // the baseline the issue names: one tape walk per query
    group.bench_function(format!("one_query_per_call/{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                black_box(model.estimate(&xs[i], ts[i]));
            }
        })
    });
    // coalesced: every query a row of one batch matrix, one tape walk
    group.bench_function(format!("batched_coalesced/{BATCH}"), |b| {
        b.iter(|| black_box(model.predict_batch(&x_refs, &ts)))
    });
    group.finish();

    // end-to-end engine: queue + worker + batched eval (cache disabled so
    // it measures evaluation, not memoization)
    let engine = Engine::start(
        Arc::new(ModelRegistry::new(model)),
        &EngineConfig {
            workers: 1,
            shards: 1,
            max_batch_rows: BATCH,
            cache_entries: 0,
        },
    );
    let mut group = c.benchmark_group("serve_engine");
    group.sample_size(20);
    group.bench_function(format!("submit_collect/{BATCH}"), |b| {
        b.iter(|| {
            let receivers: Vec<_> = (0..BATCH)
                .map(|i| {
                    engine
                        .submit(xs[i].clone(), vec![ts[i]])
                        .expect("engine running")
                })
                .collect();
            for rx in receivers {
                black_box(rx.recv().expect("served"));
            }
        })
    });
    group.finish();
    engine.shutdown();
}

/// Rewrites `BENCH_serve.json` (repo root) with wall-clock numbers for
/// the three serving paths. Opt-in via `SELNET_BENCH_RECORD=1` so
/// ordinary `cargo bench` / CI runs never touch the tree.
fn bench_record(_c: &mut Criterion) {
    if std::env::var("SELNET_BENCH_RECORD").as_deref() != Ok("1") {
        return;
    }
    use std::time::Instant;
    fn time_ms(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
        f(); // warm up
        let mut best = f64::MAX;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t.elapsed().as_secs_f64() * 1e3 / iters as f64);
        }
        best
    }

    let (ds, model) = model_fixture();
    let (xs, ts) = query_batch(&ds, model.tmax());
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();

    let single = time_ms(10, 10, || {
        for i in 0..BATCH {
            black_box(model.estimate(&xs[i], ts[i]));
        }
    });
    let batched = time_ms(10, 10, || {
        black_box(model.predict_batch(&x_refs, &ts));
    });

    let engine = Engine::start(
        Arc::new(ModelRegistry::new(model)),
        &EngineConfig {
            workers: 1,
            shards: 1,
            max_batch_rows: BATCH,
            cache_entries: 0,
        },
    );
    let engine_batch = time_ms(10, 10, || {
        let receivers: Vec<_> = (0..BATCH)
            .map(|i| {
                engine
                    .submit(xs[i].clone(), vec![ts[i]])
                    .expect("engine running")
            })
            .collect();
        for rx in receivers {
            black_box(rx.recv().expect("served"));
        }
    });
    engine.shutdown();

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        r#"{{
  "description": "Serving throughput at batch {BATCH} on a tiny()-architecture partitioned SelNet (K=3): one_query_per_call = {BATCH} separate pooled-tape evaluations; batched_coalesced = one predict_batch tape pass over all {BATCH} rows; engine_submit_collect = the same through the full engine (queue + worker thread + reply channels, cache off). Times in milliseconds per {BATCH}-query wave (best-of-samples mean); recorded by SELNET_BENCH_RECORD=1 cargo bench -p selnet-bench --bench serve.",
  "current": {{
    "machine_cpus": {cpus},
    "one_query_per_call_{BATCH}_ms": {single:.4},
    "batched_coalesced_{BATCH}_ms": {batched:.4},
    "engine_submit_collect_{BATCH}_ms": {engine_batch:.4},
    "queries_per_sec_single": {qps_single:.0},
    "queries_per_sec_batched": {qps_batched:.0},
    "queries_per_sec_engine": {qps_engine:.0},
    "speedup_batched_vs_single": {speedup:.2},
    "speedup_engine_vs_single": {speedup_engine:.2}
  }},
  "notes": "speedup_batched_vs_single is the coalescing win the serving engine exists for: a batch amortizes the tape walk and turns {BATCH} skinny 1-row matmuls into one {BATCH}-row matmul. The engine path adds queue/channel overhead per request and stays well ahead of one-query-per-call."
}}
"#,
        qps_single = BATCH as f64 / (single / 1e3),
        qps_batched = BATCH as f64 / (batched / 1e3),
        qps_engine = BATCH as f64 / (engine_batch / 1e3),
        speedup = single / batched,
        speedup_engine = single / engine_batch,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("\nrecorded serving numbers to {path}");
}

criterion_group!(benches, bench_serve_throughput, bench_record);
criterion_main!(benches);
