//! Serving-path benchmarks: one-query-per-tape-call vs the batched
//! coalesced entry point (`predict_batch`, now riding a compiled
//! inference plan) vs the full engine (queue + workers + cache), plus the
//! `plan` group comparing plan replays against the reference tape paths
//! on the same trained partitioned model.
//!
//! With `SELNET_BENCH_RECORD=1` the run re-times the key comparisons with
//! a plain `Instant` loop and rewrites `BENCH_serve.json` at the repo
//! root (PR 4's figures stay frozen in the `baseline_pr4` block). See
//! `crates/bench/README.md` for the workflow.

use criterion::{criterion_group, criterion_main, Criterion};
use selnet_bench::servebench::{json_number, model_fixture, query_batch, time_ms, BATCH};
use selnet_core::PlanPrecision;
use selnet_eval::SelectivityEstimator;
use selnet_serve::engine::{Engine, EngineConfig, Request};
use selnet_serve::registry::ModelRegistry;
use std::hint::black_box;
use std::sync::Arc;

fn bench_serve_throughput(c: &mut Criterion) {
    let (ds, model) = model_fixture();
    let (xs, ts) = query_batch(&ds, model.tmax());
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    // the baseline the issue names: one evaluation per query
    group.bench_function(format!("one_query_per_call/{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                black_box(model.estimate(&xs[i], ts[i]));
            }
        })
    });
    // coalesced: every query a row of one batch matrix, one plan replay
    group.bench_function(format!("batched_coalesced/{BATCH}"), |b| {
        b.iter(|| black_box(model.predict_batch(&x_refs, &ts)))
    });
    group.finish();

    // plan vs tape: the same math, compiled replay vs autodiff tape walk
    let mut group = c.benchmark_group("plan");
    group.sample_size(20);
    group.bench_function(format!("plan_batched/{BATCH}"), |b| {
        let mut out = Vec::with_capacity(BATCH);
        b.iter(|| {
            model.predict_batch_into(&x_refs, &ts, &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function(format!("tape_batched/{BATCH}"), |b| {
        b.iter(|| black_box(model.tape_predict_batch(&x_refs, &ts)))
    });
    group.bench_function(format!("plan_many/{BATCH}"), |b| {
        let mut out = Vec::with_capacity(BATCH);
        b.iter(|| {
            model.predict_many_into(&xs[0], &ts, &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function(format!("tape_many/{BATCH}"), |b| {
        b.iter(|| black_box(model.tape_predict_many(&xs[0], &ts)))
    });
    group.finish();

    // end-to-end engine: queue + worker + batched eval (cache disabled so
    // it measures evaluation, not memoization)
    let engine = Engine::start(
        Arc::new(ModelRegistry::new(model)),
        &EngineConfig {
            workers: 1,
            shards: 1,
            max_batch_rows: BATCH,
            cache_entries: 0,
            auto_batch_min_rows: 0,
            max_queue_rows: 0, // unbounded: the bench measures service, not shedding
            slow_query_us: 0,
            trace_buffer: 0,
            replay_threads: 1,
        },
    );
    let mut group = c.benchmark_group("serve_engine");
    group.sample_size(20);
    group.bench_function(format!("submit_collect/{BATCH}"), |b| {
        b.iter(|| {
            let receivers: Vec<_> = (0..BATCH)
                .map(|i| {
                    engine
                        .submit(Request::new(xs[i].clone()).thresholds(vec![ts[i]]))
                        .expect("engine running")
                })
                .collect();
            for rx in receivers {
                black_box(rx.wait().expect("served"));
            }
        })
    });
    group.finish();
    engine.shutdown();
}

/// Rewrites `BENCH_serve.json` (repo root) with wall-clock numbers for
/// the serving paths and the plan-vs-tape comparison, keeping PR 4's
/// figures frozen as `baseline_pr4` and carrying the CI regression
/// floors. Opt-in via `SELNET_BENCH_RECORD=1` so ordinary `cargo bench` /
/// CI runs never touch the tree.
fn bench_record(_c: &mut Criterion) {
    if std::env::var("SELNET_BENCH_RECORD").as_deref() != Ok("1") {
        return;
    }
    let (ds, model) = model_fixture();
    let (xs, ts) = query_batch(&ds, model.tmax());
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();

    let single = time_ms(10, 10, || {
        for i in 0..BATCH {
            black_box(model.estimate(&xs[i], ts[i]));
        }
    });
    let batched = time_ms(10, 10, || {
        black_box(model.predict_batch(&x_refs, &ts));
    });
    let tape_batched = time_ms(10, 10, || {
        black_box(model.tape_predict_batch(&x_refs, &ts));
    });
    let mut out = Vec::with_capacity(BATCH);
    let plan_many = time_ms(10, 10, || {
        model.predict_many_into(&xs[0], &ts, &mut out);
        black_box(out.last().copied());
    });
    let tape_many = time_ms(10, 10, || {
        black_box(model.tape_predict_many(&xs[0], &ts));
    });

    // precision-lowered batched serving: the same rows through each
    // lowered plan (warm calls first so compile+lowering is off the
    // clock). All four modes are timed back-to-back within each round;
    // the recorded `int8_vs_exact` is the median of the per-round
    // exact/int8 ratios, which cancels the drift that independent
    // best-of-N timings of each mode cannot (the same estimator
    // `serve_bench_guard` checks the floor with).
    let mut pout = Vec::with_capacity(BATCH);
    let modes = [
        PlanPrecision::Exact,
        PlanPrecision::Bf16,
        PlanPrecision::Int8,
        PlanPrecision::Pruned { threshold: 0.05 },
    ];
    for mode in modes {
        model.predict_batch_into_at(&x_refs, &ts, mode, &mut pout);
    }
    let mut mode_ms = [f64::INFINITY; 4];
    let mut ratios = Vec::with_capacity(96);
    for _ in 0..96 {
        let mut round = [0.0f64; 4];
        for (slot, mode) in round.iter_mut().zip(modes) {
            *slot = time_ms(1, 5, || {
                model.predict_batch_into_at(&x_refs, &ts, mode, &mut pout);
                black_box(pout.last().copied());
            });
        }
        for (best, r) in mode_ms.iter_mut().zip(round) {
            *best = best.min(r);
        }
        ratios.push(round[0] / round[2]);
    }
    ratios.sort_by(f64::total_cmp);
    let int8_vs_exact_paired = ratios[ratios.len() / 2];
    let [p_exact, p_bf16, p_int8, p_pruned] = mode_ms;

    // row-chunked parallel replay: the same wave through
    // `predict_batch_into_at_threaded` at 1/2/4/8 threads (on a 1-vCPU
    // box the curve is flat by construction — answers are bit-identical
    // either way, so the numbers are still honest)
    let mut sout = Vec::with_capacity(BATCH);
    let scaling_ms: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            time_ms(10, 10, || {
                model.predict_batch_into_at_threaded(
                    &x_refs,
                    &ts,
                    PlanPrecision::Exact,
                    threads,
                    &mut sout,
                );
                black_box(sout.last().copied());
            })
        })
        .collect();
    // 1-thread-vs-current guard estimator: median of per-round paired
    // serial/1t ratios (same drift-cancelling shape as int8_vs_exact) —
    // ≥ 1.0 means chunk plumbing costs nothing when it doesn't engage
    let mut paired = Vec::with_capacity(96);
    for _ in 0..96 {
        let serial = time_ms(1, 5, || {
            model.predict_batch_into_at(&x_refs, &ts, PlanPrecision::Exact, &mut sout);
            black_box(sout.last().copied());
        });
        let one_t = time_ms(1, 5, || {
            model.predict_batch_into_at_threaded(&x_refs, &ts, PlanPrecision::Exact, 1, &mut sout);
            black_box(sout.last().copied());
        });
        paired.push(serial / one_t);
    }
    paired.sort_by(f64::total_cmp);
    let replay_1t_vs_current = paired[paired.len() / 2];

    let sweep_model = model.clone();
    let engine = Engine::start(
        Arc::new(ModelRegistry::new(model)),
        &EngineConfig {
            workers: 1,
            shards: 1,
            max_batch_rows: BATCH,
            cache_entries: 0,
            auto_batch_min_rows: 0,
            max_queue_rows: 0,
            slow_query_us: 0,
            trace_buffer: 0,
            replay_threads: 1,
        },
    );
    let engine_batch = time_ms(10, 10, || {
        let receivers: Vec<_> = (0..BATCH)
            .map(|i| {
                engine
                    .submit(Request::new(xs[i].clone()).thresholds(vec![ts[i]]))
                    .expect("engine running")
            })
            .collect();
        for rx in receivers {
            black_box(rx.wait().expect("served"));
        }
    });
    engine.shutdown();

    // client-window × server-in-flight-cap sweep over real TCP (the PR 6
    // remainder): one pipelined connection pumps the same wave per
    // setting; window 1 is the no-pipelining control the coalescing win
    // is measured against
    let windows = [1usize, 8, 32, 128];
    let caps = [64usize, 256];
    let mut sweep_lines = Vec::new();
    let mut best = (f64::MAX, 0usize, 0usize);
    let mut w1_ms = f64::MAX;
    for &cap in &caps {
        selnet_serve::server::set_max_inflight(cap);
        let engine = Engine::start(
            Arc::new(ModelRegistry::new(sweep_model.clone())),
            &EngineConfig {
                workers: 1,
                shards: 1,
                max_batch_rows: BATCH,
                cache_entries: 0,
                auto_batch_min_rows: 0,
                max_queue_rows: 0,
                slow_query_us: 0,
                trace_buffer: 0,
                replay_threads: 1,
            },
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind sweep listener");
        let addr = listener.local_addr().expect("sweep listener addr");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let srv = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || selnet_serve::server::serve_tcp(engine, listener, stop))
        };
        for &window in &windows {
            let cfg = selnet_client::ClientConfig { window };
            let mut conn =
                selnet_client::Connection::connect_with(addr, &cfg).expect("sweep connect");
            let ms = time_ms(5, 5, || {
                for i in 0..BATCH {
                    conn.send_query(None, &xs[i], &[ts[i]]).expect("send");
                }
                for _ in 0..BATCH {
                    black_box(conn.recv().expect("recv"));
                }
            });
            if window == 1 {
                w1_ms = w1_ms.min(ms);
            }
            if ms < best.0 {
                best = (ms, window, cap);
            }
            sweep_lines.push(format!(r#"    "w{window}_cap{cap}_ms": {ms:.4}"#));
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        srv.join()
            .expect("sweep server thread")
            .expect("sweep server");
        engine.shutdown();
    }
    selnet_serve::server::set_max_inflight(0);
    let sweep_block = sweep_lines.join(",\n");
    let (best_ms, best_window, best_cap) = best;

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    // floors survive re-recording: read them back from the existing file
    // (falling back to the shipped defaults)
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let floors_blob = existing
        .find("\"floors\"")
        .map(|i| &existing[i..])
        .unwrap_or("");
    let floor_batched = json_number(floors_blob, "speedup_batched_vs_single").unwrap_or(2.0);
    let floor_plan = json_number(floors_blob, "plan_vs_tape").unwrap_or(1.05);
    let floor_int8 = json_number(floors_blob, "int8_vs_exact").unwrap_or(1.0);
    let floor_obs = json_number(floors_blob, "obs_overhead_max").unwrap_or(1.03);
    let floor_obs_slow = json_number(floors_blob, "obs_slowpath_max").unwrap_or(1.25);
    let floor_replay_1t = json_number(floors_blob, "replay_1t_vs_current").unwrap_or(1.0);

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        r#"{{
  "description": "Serving throughput at batch {BATCH} on a tiny()-architecture partitioned SelNet (K=3): one_query_per_call = {BATCH} separate single-query evaluations; batched_coalesced = one predict_batch plan replay over all {BATCH} rows; engine_submit_collect = the same through the full engine (queue + worker thread + reply channels, cache off). The plan block compares the compiled grad-free inference plan against the reference autodiff-tape forward on identical inputs. Times in milliseconds per {BATCH}-query wave (best-of-samples mean); recorded by SELNET_BENCH_RECORD=1 cargo bench -p selnet-bench --bench serve.",
  "baseline_pr4": {{
    "machine_cpus": 1,
    "one_query_per_call_{BATCH}_ms": 0.3047,
    "batched_coalesced_{BATCH}_ms": 0.0631,
    "engine_submit_collect_{BATCH}_ms": 0.2318,
    "queries_per_sec_single": 210043,
    "queries_per_sec_batched": 1013519,
    "queries_per_sec_engine": 276043,
    "speedup_batched_vs_single": 4.83,
    "speedup_engine_vs_single": 1.31,
    "note": "PR 4 figures (tape-based predict_batch, pre-plan engine), frozen"
  }},
  "current": {{
    "machine_cpus": {cpus},
    "one_query_per_call_{BATCH}_ms": {single:.4},
    "batched_coalesced_{BATCH}_ms": {batched:.4},
    "engine_submit_collect_{BATCH}_ms": {engine_batch:.4},
    "queries_per_sec_single": {qps_single:.0},
    "queries_per_sec_batched": {qps_batched:.0},
    "queries_per_sec_engine": {qps_engine:.0},
    "speedup_batched_vs_single": {speedup:.2},
    "speedup_engine_vs_single": {speedup_engine:.2},
    "engine_vs_batched": {engine_vs_batched:.2}
  }},
  "plan": {{
    "plan_batched_{BATCH}_ms": {batched:.4},
    "tape_batched_{BATCH}_ms": {tape_batched:.4},
    "plan_vs_tape_batched": {plan_vs_tape:.2},
    "plan_many_{BATCH}_ms": {plan_many:.4},
    "tape_many_{BATCH}_ms": {tape_many:.4},
    "plan_vs_tape_many": {plan_vs_tape_many:.2}
  }},
  "precision": {{
    "exact_batched_{BATCH}_ms": {p_exact:.4},
    "bf16_batched_{BATCH}_ms": {p_bf16:.4},
    "int8_batched_{BATCH}_ms": {p_int8:.4},
    "pruned005_batched_{BATCH}_ms": {p_pruned:.4},
    "queries_per_sec_exact": {qps_exact:.0},
    "queries_per_sec_bf16": {qps_bf16:.0},
    "queries_per_sec_int8": {qps_int8:.0},
    "queries_per_sec_pruned005": {qps_pruned:.0},
    "int8_vs_exact": {int8_vs_exact:.2},
    "note": "predict_batch_into_at over the same {BATCH} rows, one row per precision-lowered plan; int8_vs_exact is the median of per-round paired exact/int8 ratios (drift-cancelling, same estimator as serve_bench_guard); accuracy contract for the lossy modes lives in crates/core/tests/plan_precision.rs"
  }},
  "scaling": {{
    "machine_cpus": {cpus},
    "batched_replay_1t_ms": {s1:.4},
    "batched_replay_2t_ms": {s2:.4},
    "batched_replay_4t_ms": {s4:.4},
    "batched_replay_8t_ms": {s8:.4},
    "speedup_4t_vs_1t": {s_speedup:.2},
    "replay_1t_vs_current": {replay_1t_vs_current:.2},
    "note": "predict_batch_into_at_threaded over the same {BATCH} rows at 1/2/4/8 replay threads (row-chunked parallel plan replay, bit-identical answers at every count). replay_1t_vs_current is the median paired serial/1-thread ratio — the chunked entry point at 1 thread must not cost over the plain serial path. speedup_4t_vs_1t only shows a parallel win when machine_cpus >= 4; on a 1-vCPU recorder the curve is flat and the guard skips the 4t floor."
  }},
  "client_sweep": {{
{sweep_block},
    "best_window": {best_window},
    "best_inflight_cap": {best_cap},
    "best_ms": {best_ms:.4},
    "pipelining_win_vs_w1": {sweep_win:.2},
    "note": "client per-connection window x server per-connection in-flight cap over real TCP (one pipelined connection, {BATCH}-query wave, workers=1). Window 1 is the no-pipelining control; pipelining_win_vs_w1 = w1 time / best time, the coalescing win pipelining buys. On this recording host the curve saturates once window >= the coalescing batch; the shipped defaults (window 32, cap 256) sit on the flat part, so they stay."
  }},
  "floors": {{
    "speedup_batched_vs_single": {floor_batched:.2},
    "plan_vs_tape": {floor_plan:.2},
    "int8_vs_exact": {floor_int8:.2},
    "obs_overhead_max": {floor_obs:.2},
    "obs_slowpath_max": {floor_obs_slow:.2},
    "replay_1t_vs_current": {floor_replay_1t:.2},
    "note": "CI floors enforced by serve_bench_guard; conservative next to the recorded figures to ride out machine noise. obs_overhead_max bounds the median paired-round ratio of obs-armed (span ring + slow-query log at a tail-calibrated threshold) over obs-disabled engine submit/collect waves: the always-on observability cost of untraced traffic must stay under 3% on the batched hot path (per-request spans are sampled, paid only by trace-ID-carrying requests). obs_slowpath_max separately bounds the pathological every-request-slow configuration (1us threshold, one bounded log push per request at 600k+ req/s) so the slow path can never silently grow a syscall, an allocation, or an O(n) push. replay_1t_vs_current floors the recorded scaling.replay_1t_vs_current ratio (guard applies a small noise grace) so single-thread replay can never regress while chasing multi-core scaling."
  }},
  "notes": "speedup_batched_vs_single is the coalescing win the serving engine exists for: a batch amortizes the forward pass and turns {BATCH} skinny 1-row matmuls into one {BATCH}-row matmul. plan_vs_tape_batched is the compiled-plan win on top: no grad buffers, no per-call parameter injection, fused affine+activation steps. engine_vs_batched is the remaining queue/channel overhead per request (1.0 = free)."
}}
"#,
        qps_single = BATCH as f64 / (single / 1e3),
        qps_batched = BATCH as f64 / (batched / 1e3),
        qps_engine = BATCH as f64 / (engine_batch / 1e3),
        speedup = single / batched,
        speedup_engine = single / engine_batch,
        engine_vs_batched = engine_batch / batched,
        plan_vs_tape = tape_batched / batched,
        plan_vs_tape_many = tape_many / plan_many,
        qps_exact = BATCH as f64 / (p_exact / 1e3),
        qps_bf16 = BATCH as f64 / (p_bf16 / 1e3),
        qps_int8 = BATCH as f64 / (p_int8 / 1e3),
        qps_pruned = BATCH as f64 / (p_pruned / 1e3),
        int8_vs_exact = int8_vs_exact_paired,
        s1 = scaling_ms[0],
        s2 = scaling_ms[1],
        s4 = scaling_ms[2],
        s8 = scaling_ms[3],
        s_speedup = scaling_ms[0] / scaling_ms[2],
        sweep_win = w1_ms / best_ms,
    );
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("\nrecorded serving numbers to {path}");
}

criterion_group!(benches, bench_serve_throughput, bench_record);
criterion_main!(benches);
