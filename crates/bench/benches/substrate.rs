//! Microbenchmarks of the substrates: tensor matmul, cover-tree
//! construction and range counting, PWL head evaluation, and workload
//! ground-truth labeling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selnet_core::PiecewiseLinear;
use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_index::CoverTree;
use selnet_metric::DistanceKind;
use selnet_tensor::{Graph, Matrix};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_matmul");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let a = Matrix::from_fn(size, size, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.01);
        let b = Matrix::from_fn(size, size, |i, j| ((i * 13 + j * 29) % 89) as f32 * 0.01);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

fn bench_cover_tree(c: &mut Criterion) {
    let ds = fasttext_like(&GeneratorConfig::new(5000, 16, 8, 1));
    let mut group = c.benchmark_group("cover_tree");
    group.sample_size(10);
    group.bench_function("build_5k", |b| b.iter(|| black_box(CoverTree::build(&ds))));
    let tree = CoverTree::build(&ds);
    let q = ds.row(17).to_vec();
    group.bench_function("range_count", |b| {
        b.iter(|| black_box(tree.range_count(black_box(&q), black_box(2.0))))
    });
    group.bench_function("nearest", |b| {
        b.iter(|| black_box(tree.nearest(black_box(&q))))
    });
    group.finish();
}

fn bench_pwl(c: &mut Criterion) {
    let tau: Vec<f32> = (0..52).map(|i| i as f32 / 51.0).collect();
    let p: Vec<f32> = (0..52).map(|i| (i * i) as f32).collect();
    let pwl = PiecewiseLinear::new(tau.clone(), p.clone());
    let mut group = c.benchmark_group("pwl_head");
    group.bench_function("eval_scalar", |b| {
        b.iter(|| black_box(pwl.eval(black_box(0.73))))
    });
    group.bench_function("eval_tape_batch256", |b| {
        let ts: Vec<f32> = (0..256).map(|i| i as f32 / 256.0).collect();
        b.iter(|| {
            let mut g = Graph::new();
            let tauv = g.leaf(Matrix::row_vector(&tau));
            let pv = g.leaf(Matrix::row_vector(&p));
            let tv = g.leaf(Matrix::col_vector(&ts));
            black_box(g.pwl_interp(tauv, pv, tv))
        })
    });
    group.finish();
}

fn bench_ground_truth(c: &mut Criterion) {
    let ds = fasttext_like(&GeneratorConfig::new(10_000, 24, 8, 2));
    let q = ds.row(3).to_vec();
    let mut group = c.benchmark_group("ground_truth");
    group.sample_size(10);
    group.bench_function("sorted_distances_10k_d24", |b| {
        b.iter(|| {
            black_box(selnet_workload::sorted_distances(
                &ds,
                black_box(&q),
                DistanceKind::Euclidean,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_cover_tree,
    bench_pwl,
    bench_ground_truth
);
criterion_main!(benches);
