//! Microbenchmarks of the substrates: tensor matmul (naive reference vs
//! blocked vs blocked+threads), the tape itself (fresh graph per step vs
//! arena reuse — the allocation-sensitive benchmark), cover-tree
//! construction and range counting, PWL head evaluation, workload
//! ground-truth labeling, and one end-to-end training epoch.
//!
//! With `SELNET_BENCH_RECORD=1` the run re-times the key kernels with a
//! plain `Instant` loop and rewrites `BENCH_substrate.json` at the repo
//! root, next to the frozen seed/PR-2 baselines, so perf PRs leave a
//! recorded trajectory. See `crates/bench/README.md` for the workflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selnet_core::PiecewiseLinear;
use selnet_data::generators::{fasttext_like, GeneratorConfig};
use selnet_index::CoverTree;
use selnet_metric::DistanceKind;
use selnet_tensor::{Activation, Graph, Matrix, Mlp, Optimizer, ParamStore, Sgd};
use std::hint::black_box;

/// One forward+backward+step of a small MLP regression — the op mix of
/// the training hot path. The benchmark runs it two ways: handing in a
/// brand-new `Graph` per step (the historical behavior) vs one long-lived
/// arena tape that each step resets and refills.
fn tape_step(
    g: &mut Graph,
    store: &mut ParamStore,
    opt: &mut Sgd,
    net: &Mlp,
    x: &Matrix,
    y: &Matrix,
) -> f32 {
    g.reset();
    let xv = g.leaf_ref(x);
    let yv = g.leaf_ref(y);
    let pred = net.forward(g, store, xv);
    let d = g.sub(pred, yv);
    let h = g.huber(d, 1.0);
    let loss = g.mean(h);
    g.backward(loss);
    let val = g.value(loss).get(0, 0);
    let grads = g.param_grad_refs();
    opt.step_refs(store, &grads);
    val
}

/// Small-batch fixture: `rows = 16` is the regime the ROADMAP flags, where
/// per-op allocation (not matmul flops) dominates the step.
fn tape_fixture(rows: usize) -> (ParamStore, Mlp, Matrix, Matrix) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let net = Mlp::new(
        &mut store,
        "bench",
        &[10, 64, 64, 1],
        Activation::Relu,
        Activation::Linear,
        &mut rng,
    );
    let x = Matrix::from_fn(rows, 10, |i, j| ((i * 7 + j * 13) % 31) as f32 * 0.05 - 0.7);
    let y = Matrix::from_fn(rows, 1, |i, _| (i % 17) as f32 * 0.1);
    (store, net, x, y)
}

fn bench_tape(c: &mut Criterion) {
    let mut group = c.benchmark_group("tape");
    group.sample_size(20);
    for rows in [16usize, 128] {
        let (mut store, net, x, y) = tape_fixture(rows);
        let mut opt = Sgd::new(1e-3);
        group.bench_function(format!("train_step_b{rows}_fresh_graph"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                black_box(tape_step(&mut g, &mut store, &mut opt, &net, &x, &y))
            })
        });
        let (mut store, net, x, y) = tape_fixture(rows);
        let mut opt = Sgd::new(1e-3);
        let mut g = Graph::new();
        group.bench_function(format!("train_step_b{rows}_reused_arena"), |b| {
            b.iter(|| black_box(tape_step(&mut g, &mut store, &mut opt, &net, &x, &y)))
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_matmul");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let a = Matrix::from_fn(size, size, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.01);
        let b = Matrix::from_fn(size, size, |i, j| ((i * 13 + j * 29) % 89) as f32 * 0.01);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    // before/after at the ROADMAP's flagged size: the naive ikj reference
    // (the seed kernel) vs the blocked kernel vs blocked + 4 workers
    let a = Matrix::from_fn(256, 256, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.01);
    let b = Matrix::from_fn(256, 256, |i, j| ((i * 13 + j * 29) % 89) as f32 * 0.01);
    group.bench_function("256_naive_seed", |bench| {
        bench.iter(|| black_box(a.matmul_naive(&b)))
    });
    group.bench_function("256_blocked_1t", |bench| {
        bench.iter(|| black_box(a.matmul_threaded(&b, 1)))
    });
    group.bench_function("256_blocked_4t", |bench| {
        bench.iter(|| black_box(a.matmul_threaded(&b, 4)))
    });
    group.bench_function("256_at_b_blocked_1t", |bench| {
        bench.iter(|| black_box(a.matmul_at_b_threaded(&b, 1)))
    });
    group.bench_function("256_a_bt_lanes_1t", |bench| {
        bench.iter(|| black_box(a.matmul_a_bt_threaded(&b, 1)))
    });
    group.finish();
}

/// The serving shapes the skinny-kernel tuning targets: a coalesced wave
/// is 64 rows through layers of width 16–64, nothing like the square
/// 256² the classic group times. `(m, k, n)` for `A(m×k) · B(k×n)`.
const GEMM_SHAPES: [(usize, usize, usize); 5] = [
    (64, 10, 64),    // wave × input dim → trunk
    (64, 64, 64),    // trunk → trunk
    (64, 64, 16),    // trunk → head
    (16, 64, 64),    // light wave (auto-batch floor)
    (256, 256, 256), // control: the square shape the tiling was built for
];

fn gemm_fixture(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.01);
    let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 29) % 89) as f32 * 0.01);
    (a, b)
}

/// Yardstick group: the hand-tiled kernel vs the straightforward naive
/// gemm on the exact serving shapes, so kernel-peak distance is a tracked
/// number per shape rather than folklore extrapolated from 256².
fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_yardstick");
    group.sample_size(20);
    for (m, k, n) in GEMM_SHAPES {
        let (a, b) = gemm_fixture(m, k, n);
        group.bench_function(format!("{m}x{k}x{n}_hand"), |bench| {
            bench.iter(|| black_box(a.matmul_threaded(&b, 1)))
        });
        group.bench_function(format!("{m}x{k}x{n}_naive"), |bench| {
            bench.iter(|| black_box(a.matmul_naive(&b)))
        });
    }
    group.finish();
}

fn bench_cover_tree(c: &mut Criterion) {
    let ds = fasttext_like(&GeneratorConfig::new(5000, 16, 8, 1));
    let mut group = c.benchmark_group("cover_tree");
    group.sample_size(10);
    group.bench_function("build_5k", |b| b.iter(|| black_box(CoverTree::build(&ds))));
    let tree = CoverTree::build(&ds);
    let q = ds.row(17).to_vec();
    group.bench_function("range_count", |b| {
        b.iter(|| black_box(tree.range_count(black_box(&q), black_box(2.0))))
    });
    group.bench_function("nearest", |b| {
        b.iter(|| black_box(tree.nearest(black_box(&q))))
    });
    group.finish();
}

fn bench_pwl(c: &mut Criterion) {
    let tau: Vec<f32> = (0..52).map(|i| i as f32 / 51.0).collect();
    let p: Vec<f32> = (0..52).map(|i| (i * i) as f32).collect();
    let pwl = PiecewiseLinear::new(tau.clone(), p.clone());
    let mut group = c.benchmark_group("pwl_head");
    group.bench_function("eval_scalar", |b| {
        b.iter(|| black_box(pwl.eval(black_box(0.73))))
    });
    group.bench_function("eval_tape_batch256", |b| {
        let ts: Vec<f32> = (0..256).map(|i| i as f32 / 256.0).collect();
        b.iter(|| {
            let mut g = Graph::new();
            let tauv = g.leaf(Matrix::row_vector(&tau));
            let pv = g.leaf(Matrix::row_vector(&p));
            let tv = g.leaf(Matrix::col_vector(&ts));
            black_box(g.pwl_interp(tauv, pv, tv))
        })
    });
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    use selnet_core::SelNetConfig;
    use selnet_workload::{generate_workload, ThresholdScheme, WorkloadConfig};
    let ds = fasttext_like(&GeneratorConfig::new(2000, 6, 4, 7));
    let wcfg = WorkloadConfig {
        num_queries: 60,
        thresholds_per_query: 12,
        kind: DistanceKind::Euclidean,
        scheme: ThresholdScheme::GeometricSelectivity,
        seed: 1,
        threads: 4,
    };
    let w = generate_workload(&ds, &wcfg);
    let mut cfg = SelNetConfig::tiny();
    cfg.epochs = 1;
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    group.bench_function("tiny_1epoch", |b| {
        b.iter(|| black_box(selnet_core::fit(&ds, &w, &cfg)))
    });
    group.finish();
}

fn bench_ground_truth(c: &mut Criterion) {
    let ds = fasttext_like(&GeneratorConfig::new(10_000, 24, 8, 2));
    let q = ds.row(3).to_vec();
    let mut group = c.benchmark_group("ground_truth");
    group.sample_size(10);
    group.bench_function("sorted_distances_10k_d24", |b| {
        b.iter(|| {
            black_box(selnet_workload::sorted_distances(
                &ds,
                black_box(&q),
                DistanceKind::Euclidean,
            ))
        })
    });
    group.finish();
}

/// Re-times the headline kernels with a plain wall-clock loop and rewrites
/// `BENCH_substrate.json` (repo root). Opt-in via `SELNET_BENCH_RECORD=1`
/// so ordinary `cargo bench` / CI runs never touch the tree; the frozen
/// `seed` numbers inside the JSON are the pre-optimization measurements
/// and are preserved verbatim by this recorder.
fn bench_record(_c: &mut Criterion) {
    if std::env::var("SELNET_BENCH_RECORD").as_deref() != Ok("1") {
        return;
    }
    use std::time::Instant;
    // best-of-samples mean, in milliseconds
    fn time_ms(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
        f(); // warm up
        let mut best = f64::MAX;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t.elapsed().as_secs_f64() * 1e3 / iters as f64);
        }
        best
    }

    let a = Matrix::from_fn(256, 256, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.01);
    let b = Matrix::from_fn(256, 256, |i, j| ((i * 13 + j * 29) % 89) as f32 * 0.01);
    let naive = time_ms(10, 10, || {
        black_box(a.matmul_naive(&b));
    });
    let blocked_1t = time_ms(10, 10, || {
        black_box(a.matmul_threaded(&b, 1));
    });
    let blocked_4t = time_ms(10, 10, || {
        black_box(a.matmul_threaded(&b, 4));
    });
    let at_b_1t = time_ms(10, 10, || {
        black_box(a.matmul_at_b_threaded(&b, 1));
    });
    let a_bt_1t = time_ms(10, 10, || {
        black_box(a.matmul_a_bt_threaded(&b, 1));
    });

    // tape overhead at batch 16 (the small-batch regime the ROADMAP
    // flags): fresh graph per step vs reused arena
    let (mut store, net, bx, by) = tape_fixture(16);
    let mut opt = Sgd::new(1e-3);
    let tape_fresh = time_ms(10, 50, || {
        let mut g = Graph::new();
        black_box(tape_step(&mut g, &mut store, &mut opt, &net, &bx, &by));
    });
    let (mut store, net, bx, by) = tape_fixture(16);
    let mut opt = Sgd::new(1e-3);
    let mut g = Graph::new();
    let tape_reused = time_ms(10, 50, || {
        black_box(tape_step(&mut g, &mut store, &mut opt, &net, &bx, &by));
    });

    use selnet_core::SelNetConfig;
    use selnet_workload::{generate_workload, ThresholdScheme, WorkloadConfig};
    let ds = fasttext_like(&GeneratorConfig::new(2000, 6, 4, 7));
    let wcfg = WorkloadConfig {
        num_queries: 60,
        thresholds_per_query: 12,
        kind: DistanceKind::Euclidean,
        scheme: ThresholdScheme::GeometricSelectivity,
        seed: 1,
        threads: 4,
    };
    let w = generate_workload(&ds, &wcfg);
    let mut cfg = SelNetConfig::tiny();
    cfg.epochs = 1;
    let train_epoch = time_ms(5, 3, || {
        black_box(selnet_core::fit(&ds, &w, &cfg));
    });

    // the parallel matmul dispatcher's scaling curve at the 256² control
    // shape (per-thread times; equal on a 1-vCPU box by construction)
    let mm_scaling: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            time_ms(10, 10, || {
                black_box(a.matmul_threaded(&b, t));
            })
        })
        .collect();

    // gemm yardstick: hand kernel vs naive reference per serving shape
    let gemm_lines: Vec<String> = GEMM_SHAPES
        .iter()
        .map(|&(m, k, n)| {
            let (ga, gb) = gemm_fixture(m, k, n);
            let hand = time_ms(10, 50, || {
                black_box(ga.matmul_threaded(&gb, 1));
            });
            let naive_ref = time_ms(10, 50, || {
                black_box(ga.matmul_naive(&gb));
            });
            format!(
                r#"    "{m}x{k}x{n}": {{ "hand_ms": {hand:.5}, "naive_ms": {naive_ref:.5}, "hand_vs_naive": {ratio:.2} }}"#,
                ratio = naive_ref / hand
            )
        })
        .collect();
    let gemm_block = gemm_lines.join(",\n");

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The `seed` block is the frozen pre-optimization measurement (naive
    // ikj kernel, no target-cpu flags, single thread) and the `pr2` block
    // the frozen post-blocked-kernel measurement — keep both stable so the
    // trajectory stays comparable across PRs.
    let json = format!(
        r#"{{
  "description": "Substrate benchmark trajectory: seed = frozen pre-optimization baseline; pr2 = frozen blocked-kernel baseline (PR 2); current = latest SELNET_BENCH_RECORD=1 run of `cargo bench -p selnet-bench --bench substrate`. Times in milliseconds (best-of-samples mean).",
  "seed": {{
    "machine_cpus": 1,
    "matmul_256_ms": 2.0667,
    "matmul_128_ms": 0.2678,
    "matmul_64_ms": 0.03741,
    "train_epoch_tiny_ms": 3.3017
  }},
  "pr2": {{
    "machine_cpus": 1,
    "matmul_naive_256_ms": 1.5338,
    "matmul_blocked_256_1t_ms": 0.5930,
    "train_epoch_tiny_ms": 1.3914
  }},
  "current": {{
    "machine_cpus": {cpus},
    "matmul_naive_256_ms": {naive:.4},
    "matmul_blocked_256_1t_ms": {blocked_1t:.4},
    "matmul_blocked_256_4t_ms": {blocked_4t:.4},
    "matmul_at_b_256_1t_ms": {at_b_1t:.4},
    "matmul_a_bt_256_1t_ms": {a_bt_1t:.4},
    "tape_train_step_b16_fresh_graph_ms": {tape_fresh:.4},
    "tape_train_step_b16_reused_arena_ms": {tape_reused:.4},
    "train_epoch_tiny_ms": {train_epoch:.4},
    "speedup_vs_seed_matmul_256": {speedup_mm:.2},
    "speedup_vs_seed_train_epoch": {speedup_te:.2},
    "speedup_vs_pr2_train_epoch": {speedup_pr2:.2},
    "speedup_tape_reuse_vs_fresh": {speedup_tape:.2}
  }},
  "scaling": {{
    "machine_cpus": {cpus},
    "matmul_256_1t_ms": {mm1:.4},
    "matmul_256_2t_ms": {mm2:.4},
    "matmul_256_4t_ms": {mm4:.4},
    "matmul_256_8t_ms": {mm8:.4},
    "speedup_4t_vs_1t": {mm_speedup:.2}
  }},
  "gemm": {{
{gemm_block}
  }},
  "notes": "seed/pr2 numbers were taken on a single-vCPU container; the 4t entries only show parallel gains on multi-core hosts (the kernels are bit-identical across thread counts either way). The tape_* pair isolates per-step tape overhead: same model, same data, fresh Graph per step vs one reused arena. The scaling block is the parallel matmul dispatcher's per-thread curve at the 256² control shape; the gemm block is the hand-tiled kernel vs the naive ikj reference per serving shape (hand_vs_naive > 1 means the hand kernel wins), recorded on machine_cpus cores."
}}
"#,
        mm1 = mm_scaling[0],
        mm2 = mm_scaling[1],
        mm4 = mm_scaling[2],
        mm8 = mm_scaling[3],
        mm_speedup = mm_scaling[0] / mm_scaling[2],
        speedup_mm = 2.0667 / blocked_1t.min(blocked_4t),
        speedup_te = 3.3017 / train_epoch,
        speedup_pr2 = 1.3914 / train_epoch,
        speedup_tape = tape_fresh / tape_reused,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_substrate.json");
    std::fs::write(path, json).expect("write BENCH_substrate.json");
    println!("\nrecorded substrate numbers to {path}");
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gemm,
    bench_tape,
    bench_cover_tree,
    bench_pwl,
    bench_train_epoch,
    bench_ground_truth,
    bench_record
);
criterion_main!(benches);
