//! Criterion benchmark for Table 7's subject: single-query estimation
//! latency of every model family, measured on small pre-trained models so
//! `cargo bench` completes quickly. The `repro_timing` binary produces the
//! paper-style table at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use selnet_bench::harness::{build_setting, train_model, ModelKind, Scale, Setting};
use std::hint::black_box;

fn bench_estimation(c: &mut Criterion) {
    let scale = Scale {
        n: 2000,
        dim: 12,
        clusters: 6,
        queries: 60,
        w: 8,
        epochs: 3,
        ..Scale::default()
    };
    let (ds, w) = build_setting(Setting::FaceCos, &scale);
    let q = w.test[0].x.clone();
    let t = w.test[0].thresholds[w.test[0].thresholds.len() / 2];

    let mut group = c.benchmark_group("estimate_single");
    group.sample_size(20);
    for kind in [
        ModelKind::Lsh,
        ModelKind::Kde,
        ModelKind::LightGbm,
        ModelKind::Dnn,
        ModelKind::Moe,
        ModelKind::Rmi,
        ModelKind::Dln,
        ModelKind::Umnn,
        ModelKind::SelNetCt,
        ModelKind::SelNet,
    ] {
        let Some(model) = train_model(kind, &ds, &w, &scale) else {
            continue;
        };
        group.bench_function(model.name().to_string(), |b| {
            b.iter(|| black_box(model.estimate(black_box(&q), black_box(t))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
